"""The parallel runner must change wall-clock only, never results.

``parallel_map`` fans seed-deterministic simulations across spawn-mode
worker processes; the contract is that every simulation-derived field
(event counts, virtual times, bytes, group membership) is *identical*
to a serial run — parallelism may only affect how long the host takes.
These tests pin that contract at three layers: the primitive, the
bench runner, and the sweep CLI's emitted JSON.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.bench import run_bench
from repro.eval.parallel import parallel_map
from repro.eval.sweeps import density_sweep, fragmentation_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
SWEEP_CLI = REPO_ROOT / "scripts" / "sweep.py"

#: Cheap scenarios — enough to exercise the fan-out without paying for
#: the four-digit crowds in every test run.
SMOKE_SCENARIOS = ["testbed_boot", "discovery_n4", "ps_roundtrip"]


def _square(task: int) -> int:
    return task * task


class TestParallelMap:
    def test_serial_path_used_for_single_job(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_results_keep_task_order_across_workers(self):
        tasks = list(range(12))
        assert parallel_map(_square, tasks, jobs=3) == \
            [task * task for task in tasks]

    def test_empty_task_list(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0], jobs=2)

    @pytest.mark.parametrize("jobs", [0, -1, -4])
    def test_job_counts_below_one_rejected(self, jobs):
        """A zero/negative job count is a caller bug (mistyped flag),
        not a request for serial — it must fail loudly."""
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            parallel_map(_square, [1, 2, 3], jobs=jobs)


def _reciprocal(task: int) -> float:
    return 1.0 / task


class TestBenchParallelDeterminism:
    def test_jobs2_matches_serial_on_simulation_fields(self):
        serial = run_bench(quick=True, scenarios=SMOKE_SCENARIOS,
                           repeats=1, jobs=1)
        fanned = run_bench(quick=True, scenarios=SMOKE_SCENARIOS,
                           repeats=1, jobs=2)
        assert list(serial["scenarios"]) == list(fanned["scenarios"])
        for name in SMOKE_SCENARIOS:
            a, b = serial["scenarios"][name], fanned["scenarios"][name]
            assert a["events_processed"] == b["events_processed"], name
            assert a["sim_seconds"] == b["sim_seconds"], name


class TestCliValidation:
    """`--jobs`/`--shards` below 1 must die at argument parsing with a
    clear message, in both CLIs and in the library entry point."""

    def _run(self, script: str, *argv: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / script), *argv],
            capture_output=True, text=True, timeout=120)

    def test_sweep_rejects_zero_jobs(self):
        proc = self._run("sweep.py", "density", "--jobs", "0")
        assert proc.returncode == 2
        assert "--jobs must be >= 1" in proc.stderr

    def test_bench_rejects_negative_jobs(self):
        proc = self._run("bench.py", "--jobs", "-2")
        assert proc.returncode == 2
        assert "--jobs must be >= 1" in proc.stderr

    def test_bench_rejects_zero_shards(self):
        proc = self._run("bench.py", "--shards", "0")
        assert proc.returncode == 2
        assert "--shards must be >= 1" in proc.stderr

    def test_bench_rejects_shards_with_jobs(self):
        proc = self._run("bench.py", "--shards", "2", "--jobs", "2")
        assert proc.returncode == 2
        assert "--shards and --jobs" in proc.stderr

    def test_run_bench_rejects_invalid_shards(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            run_bench(quick=True, scenarios=["discovery_n4"], shards=0)
        with pytest.raises(ValueError, match="--shards and --jobs"):
            run_bench(quick=True, scenarios=["discovery_n4"],
                      shards=2, jobs=2)


class TestSweepParallelDeterminism:
    def test_density_points_identical_at_any_job_count(self):
        serial = density_sweep((2, 4), 0, jobs=1)
        fanned = density_sweep((2, 4), 0, jobs=2)
        assert serial == fanned

    def test_fragmentation_points_identical_at_any_job_count(self):
        serial = fragmentation_sweep((2, 4), 6, 0, jobs=1)
        fanned = fragmentation_sweep((2, 4), 6, 0, jobs=2)
        assert serial == fanned

    def test_sweep_cli_output_is_byte_identical(self, tmp_path):
        """The whole-pipeline guarantee: ``--jobs 2`` emits the same
        bytes as serial, because no wall-clock field reaches the JSON."""
        outputs = {}
        for jobs in (1, 2):
            out = tmp_path / f"sweep_j{jobs}.json"
            proc = subprocess.run(
                [sys.executable, str(SWEEP_CLI), "all",
                 "--counts", "2,4", "--pool-sizes", "2,4",
                 "--members", "6", "--jobs", str(jobs),
                 "--output", str(out)],
                capture_output=True, text=True, timeout=600)
            assert proc.returncode == 0, proc.stderr
            outputs[jobs] = out.read_bytes()
        assert outputs[1] == outputs[2]
        report = json.loads(outputs[1])
        assert report["density"]["points"]
        assert report["fragmentation"]["points"]
