"""Unit tests for the client's pure reply-aggregation helpers.

These functions fold ``[(device_id, response), ...]`` lists with no
transport state, so the same aggregation serves both the simulated
stack and the TCP backend; here they are pinned directly on
hand-built replies.
"""

from __future__ import annotations

from repro.community import protocol
from repro.community.client import (
    collect_shared_listings,
    merge_interest_lists,
    merge_member_lists,
)


def ok(**fields) -> dict:
    return {"status": protocol.STATUS_OK, **fields}


def failed(**fields) -> dict:
    return {"status": protocol.UNSUCCESSFULL, **fields}


class TestMergeMemberLists:
    def test_deduplicates_across_devices(self):
        replies = [
            ("dev-a", ok(members=[{"member_id": "bob", "full_name": "B"}])),
            ("dev-b", ok(members=[{"member_id": "bob", "full_name": "B"},
                                  {"member_id": "amy", "full_name": "A"}])),
        ]
        merged = merge_member_lists(replies)
        assert [m["member_id"] for m in merged] == ["amy", "bob"]

    def test_skips_non_ok_replies(self):
        replies = [
            ("dev-a", failed(members=[{"member_id": "ghost"}])),
            ("dev-b", ok(members=[{"member_id": "bob"}])),
        ]
        assert [m["member_id"] for m in merge_member_lists(replies)] == ["bob"]

    def test_empty_input(self):
        assert merge_member_lists([]) == []


class TestMergeInterestLists:
    def test_appends_only_unseen_in_first_seen_order(self):
        interests = ["football"]
        replies = [
            ("dev-a", ok(interests=["music", "football"])),
            ("dev-b", ok(interests=["chess", "music"])),
        ]
        merged = merge_interest_lists(replies, interests)
        assert merged == ["football", "music", "chess"]
        assert merged is interests  # mutated in place, per the Figure 12 MSC

    def test_non_ok_replies_contribute_nothing(self):
        assert merge_interest_lists([("dev-a", failed(interests=["x"]))],
                                    ["a"]) == ["a"]


class TestCollectSharedListings:
    def test_sorted_by_device_ok_only(self):
        replies = [
            ("dev-b", ok(files=[{"name": "notes.txt"}])),
            ("dev-a", ok(files=[])),
            ("dev-c", failed()),
        ]
        assert collect_shared_listings(replies) == [
            ("dev-a", []),
            ("dev-b", [{"name": "notes.txt"}]),
        ]
