"""Property-based tests (hypothesis) on core data structures and
invariants: framing, the event queue, geometry, interests, semantics,
groups and the dynamic-group-discovery matching rule."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community.groups import GroupRegistry
from repro.community.interests import InterestSet, normalize_interest
from repro.community.semantics import SemanticMatcher
from repro.mobility.geometry import Point, Rect, distance
from repro.net.messages import deserialize, frame_size, serialize
from repro.simenv.events import EventQueue

# -- strategies ----------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
json_payloads = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5)),
    max_leaves=20)

interest_texts = st.text(
    alphabet=string.ascii_letters + "  ", min_size=1, max_size=30).filter(
        lambda s: s.strip())

member_ids = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


class TestFramingProperties:
    @given(payload=json_payloads)
    def test_serialize_round_trips(self, payload):
        assert deserialize(serialize(payload)) == payload

    @given(payload=json_payloads)
    def test_frame_size_is_serialized_length(self, payload):
        assert frame_size(payload) == len(serialize(payload))

    @given(payload=st.dictionaries(st.text(max_size=8), st.integers(),
                                   max_size=6))
    def test_encoding_is_order_insensitive(self, payload):
        reordered = dict(reversed(list(payload.items())))
        assert serialize(payload) == serialize(reordered)


class TestEventQueueProperties:
    @given(times=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                    allow_nan=False), max_size=50))
    def test_pop_order_is_sorted_and_stable(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop())
        assert [e.time for e in popped] == sorted(times)
        # Stability: equal times preserve insertion order.
        for earlier, later in zip(popped, popped[1:], strict=False):
            if earlier.time == later.time:
                assert earlier.sequence < later.sequence


class TestGeometryProperties:
    @given(x1=st.floats(-1e3, 1e3), y1=st.floats(-1e3, 1e3),
           x2=st.floats(-1e3, 1e3), y2=st.floats(-1e3, 1e3))
    def test_distance_symmetric_and_nonnegative(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert distance(a, b) == distance(b, a) >= 0.0

    @given(x1=st.floats(-1e3, 1e3), y1=st.floats(-1e3, 1e3),
           x2=st.floats(-1e3, 1e3), y2=st.floats(-1e3, 1e3),
           step=st.floats(0.0, 100.0))
    def test_moved_towards_never_overshoots(self, x1, y1, x2, y2, step):
        start, target = Point(x1, y1), Point(x2, y2)
        moved = start.moved_towards(target, step)
        assert distance(moved, target) <= distance(start, target) + 1e-6

    @given(x=st.floats(-1e4, 1e4), y=st.floats(-1e4, 1e4))
    def test_clamp_lands_inside(self, x, y):
        rect = Rect(0.0, 0.0, 100.0, 50.0)
        assert rect.contains(rect.clamp(Point(x, y)))


class TestInterestProperties:
    @given(raw=interest_texts)
    def test_normalisation_idempotent(self, raw):
        once = normalize_interest(raw)
        assert normalize_interest(once) == once

    @given(items=st.lists(interest_texts, max_size=15))
    def test_interest_set_deduplicates(self, items):
        interests = InterestSet(items)
        as_list = interests.as_list()
        assert len(as_list) == len(set(as_list))
        assert set(as_list) == {normalize_interest(item) for item in items}

    @given(ours=st.lists(interest_texts, max_size=8),
           theirs=st.lists(interest_texts, max_size=8))
    def test_matches_symmetric_as_sets(self, ours, theirs):
        a, b = InterestSet(ours), InterestSet(theirs)
        assert set(a.matches(b)) == set(b.matches(a))


class TestSemanticsProperties:
    @given(pairs=st.lists(st.tuples(interest_texts, interest_texts),
                          max_size=12))
    def test_same_is_equivalence_relation(self, pairs):
        matcher = SemanticMatcher()
        for a, b in pairs:
            matcher.teach(a, b)
        terms = [normalize_interest(t) for pair in pairs for t in pair]
        for term in terms:
            assert matcher.same(term, term)  # reflexive
        for a, b in pairs:
            assert matcher.same(a, b)        # taught pairs merged
            assert matcher.same(b, a)        # symmetric

    @given(pairs=st.lists(st.tuples(interest_texts, interest_texts),
                          min_size=1, max_size=10))
    def test_canonical_is_class_minimum(self, pairs):
        matcher = SemanticMatcher()
        for a, b in pairs:
            matcher.teach(a, b)
        for a, b in pairs:
            canonical = matcher.canonical(a)
            synonyms = matcher.synonyms_of(a)
            assert canonical == min(synonyms)
            assert normalize_interest(b) in synonyms

    @given(pairs=st.lists(st.tuples(interest_texts, interest_texts),
                          max_size=10))
    def test_teaching_order_does_not_change_classes(self, pairs):
        forward = SemanticMatcher()
        backward = SemanticMatcher()
        for a, b in pairs:
            forward.teach(a, b)
        for a, b in reversed(pairs):
            backward.teach(b, a)
        for a, b in pairs:
            assert forward.canonical(a) == backward.canonical(a)
            assert forward.canonical(b) == backward.canonical(b)


class TestGroupProperties:
    @given(events=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), member_ids,
                  st.sampled_from(["g1", "g2", "g3"])),
        max_size=40))
    def test_membership_matches_event_replay(self, events):
        registry = GroupRegistry()
        expected: dict[str, set[str]] = {}
        for time, (action, member, group_name) in enumerate(events):
            group = registry.ensure(group_name, float(time))
            if action == "add":
                group.add(member, float(time))
                expected.setdefault(group_name, set()).add(member)
            else:
                group.remove(member, float(time))
                expected.setdefault(group_name, set()).discard(member)
        for group_name, members in expected.items():
            assert registry.get(group_name).members == frozenset(members)

    @given(events=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), member_ids),
        max_size=30))
    def test_history_join_leave_alternates_per_member(self, events):
        registry = GroupRegistry()
        group = registry.ensure("g", 0.0)
        for time, (action, member) in enumerate(events):
            if action == "add":
                group.add(member, float(time))
            else:
                group.remove(member, float(time))
        per_member: dict[str, list[bool]] = {}
        for event in group.history:
            per_member.setdefault(event.member_id, []).append(event.joined)
        for joins in per_member.values():
            assert joins[0] is True
            for earlier, later in zip(joins, joins[1:], strict=False):
                assert earlier != later  # join/leave strictly alternate


class TestDiscoveryMatchingProperty:
    @settings(deadline=None)
    @given(own=st.lists(interest_texts, min_size=1, max_size=5),
           remote=st.lists(interest_texts, min_size=1, max_size=5))
    def test_group_formed_iff_interests_intersect(self, own, remote):
        """The Figure 6 rule: a shared group exists exactly when the
        normalised interest sets intersect."""
        from repro.community.discovery import DynamicGroupEngine
        from repro.community.profile import ProfileStore
        from repro.community.semantics import ExactMatcher

        class _Env:
            now = 0.0

        class _Daemon:
            env = _Env()

        class _Library:
            daemon = _Daemon()
            device_id = "local"

        store = ProfileStore()
        store.create_profile("me", "me", "pw", interests=own)
        store.login("me", "pw")
        engine = DynamicGroupEngine.__new__(DynamicGroupEngine)
        engine.store = store
        engine.matcher = ExactMatcher()
        engine.env = _Env()
        from repro.community.groups import GroupRegistry as _Registry
        engine.groups = _Registry()
        matched = engine._match_member("peer", [normalize_interest(r)
                                                for r in remote])
        own_set = {normalize_interest(i) for i in own}
        remote_set = {normalize_interest(r) for r in remote}
        assert (len(matched) > 0) == bool(own_set & remote_set)
        for interest in matched:
            group = engine.groups.get(interest)
            assert {"me", "peer"} <= set(group.members)
