"""Resolution-layer unit tests for the project call graph.

Each test writes a tiny project to ``tmp_path``, parses it with the
analyzer's own :func:`parse_module`, and asserts which edges
:func:`build_call_graph` draws — and, just as importantly, which calls
stay conservatively unresolved rather than being silently dropped.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import build_call_graph, parse_module


def build(tmp_path: Path, files: dict[str, str]):
    modules = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        modules.append(parse_module(path, root=tmp_path))
    return build_call_graph(modules)


def fid(graph, suffix: str) -> str:
    matches = [f for f in graph.functions if f.endswith(suffix)]
    assert len(matches) == 1, (suffix, sorted(graph.functions))
    return matches[0]


def callees_of(graph, caller: str) -> set[str]:
    out: set[str] = set()
    for site in graph.calls.get(caller, ()):
        out.update(site.callees)
    return out


def resolutions_of(graph, caller: str) -> set[str]:
    return {site.resolution for site in graph.calls.get(caller, ())
            if site.callees}


def test_local_function_resolution(tmp_path: Path) -> None:
    graph = build(tmp_path, {"mod.py": """
        def helper():
            return 1


        def top():
            return helper()
    """})
    assert callees_of(graph, fid(graph, "::top")) == {fid(graph, "::helper")}
    assert resolutions_of(graph, fid(graph, "::top")) == {"local"}


def test_constructor_resolves_to_init(tmp_path: Path) -> None:
    graph = build(tmp_path, {"mod.py": """
        class Engine:
            def __init__(self):
                self.n = 0


        def make():
            return Engine()
    """})
    assert callees_of(graph, fid(graph, "::make")) == \
        {fid(graph, "Engine.__init__")}


def test_self_method_resolution(tmp_path: Path) -> None:
    graph = build(tmp_path, {"mod.py": """
        class Engine:
            def step(self):
                self.helper()

            def helper(self):
                pass
    """})
    step = fid(graph, "Engine.step")
    assert callees_of(graph, step) == {fid(graph, "Engine.helper")}
    assert resolutions_of(graph, step) == {"self"}


def test_aliased_import_resolution(tmp_path: Path) -> None:
    graph = build(tmp_path, {
        "util/clock.py": """
            def now():
                return 1.0
        """,
        "app/main.py": """
            from util import clock as ck


            def run():
                return ck.now()
        """,
    })
    run = fid(graph, "main.py::run")
    assert callees_of(graph, run) == {fid(graph, "clock.py::now")}
    assert resolutions_of(graph, run) == {"import"}


def test_from_import_function_alias(tmp_path: Path) -> None:
    graph = build(tmp_path, {
        "util/clock.py": """
            def now():
                return 1.0
        """,
        "app/main.py": """
            from util.clock import now as tick


            def run():
                return tick()
        """,
    })
    assert callees_of(graph, fid(graph, "main.py::run")) == \
        {fid(graph, "clock.py::now")}


def test_annotated_parameter_resolves_typed(tmp_path: Path) -> None:
    graph = build(tmp_path, {"mod.py": """
        class Engine:
            def step(self):
                pass


        def drive(engine: Engine):
            engine.step()
    """})
    drive = fid(graph, "::drive")
    assert callees_of(graph, drive) == {fid(graph, "Engine.step")}
    assert resolutions_of(graph, drive) == {"typed"}


def test_name_fallback_over_approximates(tmp_path: Path) -> None:
    # An untyped receiver dispatches to *every* method of that name:
    # a spurious edge beats a silently missing one.
    graph = build(tmp_path, {"mod.py": """
        class A:
            def poll(self):
                pass


        class B:
            def poll(self):
                pass


        def pump(thing):
            thing.poll()
    """})
    pump = fid(graph, "::pump")
    assert callees_of(graph, pump) == \
        {fid(graph, "A.poll"), fid(graph, "B.poll")}
    assert resolutions_of(graph, pump) == {"name"}


def test_unresolvable_dynamic_call_stays_conservative(tmp_path: Path) -> None:
    graph = build(tmp_path, {"mod.py": """
        def pump(thing):
            thing.no_such_method()
    """})
    pump = fid(graph, "::pump")
    assert callees_of(graph, pump) == set()
    unresolved = [site for site in graph.unresolved if site.caller == pump]
    assert len(unresolved) == 1  # recorded, not dropped


def test_external_calls_keep_qualified_name(tmp_path: Path) -> None:
    graph = build(tmp_path, {"mod.py": """
        import time


        def stamp():
            return time.time()
    """})
    sites = graph.calls[fid(graph, "::stamp")]
    assert [site.external for site in sites] == ["time.time"]


def test_reverse_edges_mirror_forward_edges(tmp_path: Path) -> None:
    graph = build(tmp_path, {"mod.py": """
        def helper():
            return 1


        def top():
            return helper()
    """})
    helper = fid(graph, "::helper")
    assert [site.caller for site in graph.callers[helper]] == \
        [fid(graph, "::top")]
