"""Chaos harness: the seven MSC workflows under randomized faults.

Every test here drives the Figure 11-17 workflows of the paper's
reference application while a seeded :class:`FaultInjector` breaks
links, corrupts frames, spikes latency and flaps whole devices.  The
acceptance bar (ISSUE):

* every workflow *completes* — either with its normal result (retries
  absorbed the faults) or with a typed
  :class:`~repro.net.retry.Degraded` value; never an unhandled
  exception, never a hang;
* after the faults stop, the neighbourhood *converges* — every member
  ends up in exactly the groups its interests imply;
* the fault and retry counters are visible through
  ``repro.eval.metrics``.

Fault schedules are pure functions of the root seed, so each
parametrized seed is one pinned, byte-identical scenario.
"""

from __future__ import annotations

import pytest

from repro.community import protocol
from repro.eval.metrics import fault_retry_summary, summarize_testbed_faults
from repro.eval.testbed import Testbed
from repro.net.faults import FaultConfig
from repro.net.retry import Degraded, RetryPolicy, is_degraded

pytestmark = pytest.mark.chaos

#: Pinned seeds — CI runs exactly these three schedules.
CHAOS_SEEDS = (101, 202, 303)

#: Mid-stream drop probability of the acceptance scenario.
CHAOS_LEVEL = 0.2

#: Snappier than the shipping default so a chaos run stays short in
#: virtual time; semantics (typed degradation, budgets) are identical.
CHAOS_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.5,
                           max_delay_s=4.0, attempt_timeout_s=15.0,
                           budget_s=120.0)

#: Interests of the four-member neighbourhood and the group layout
#: they must converge to.
MEMBER_INTERESTS = {
    "alice": ["music", "biking"],
    "bob": ["music", "chess"],
    "carol": ["biking", "chess"],
    "dave": ["music"],
}
EXPECTED_GROUPS = {
    "music": {"alice", "bob", "dave"},
    "biking": {"alice", "carol"},
    "chess": {"bob", "carol"},
}


def build_bed(seed: int) -> Testbed:
    """Four members in Bluetooth range, converged fault-free."""
    bed = Testbed(seed=seed)
    for name, interests in MEMBER_INTERESTS.items():
        bed.add_member(name, interests, retry_policy=CHAOS_POLICY)
    # Figure 16 needs standing trust and shared content.
    bed.members["bob"].app.accept_trusted("alice")
    bed.members["bob"].app.share_file("mixtape.mp3", 96 * 1024)
    bed.run(30.0)
    return bed


def run_msc_workflows(bed: Testbed) -> dict:
    """Drive all seven Table 6 MSC workflows from alice's device."""
    alice = bed.members["alice"].app
    return {
        "fig11_members": bed.execute(alice.view_all_members()),
        "fig12_interests": bed.execute(alice.view_interest_list()),
        "fig13_profile": bed.execute(alice.view_member_profile("bob")),
        "fig14_comment": bed.execute(alice.comment_profile("bob", "nice mix")),
        "fig15_trusted": bed.execute(alice.view_trusted_friends("bob")),
        "fig16_content": bed.execute(alice.view_shared_content("bob")),
        "fig17_message": bed.execute(alice.send_message("bob", "hi", "hello")),
    }


def assert_typed(results: dict) -> None:
    """Every workflow result is its normal type or a typed Degraded."""
    ok = results["fig11_members"]
    assert is_degraded(ok) or (isinstance(ok, list)
                               and all("member_id" in m for m in ok))
    interests = results["fig12_interests"]
    assert is_degraded(interests) or isinstance(interests, list)
    if not is_degraded(interests):
        # Own interests survive even a fully degraded neighbourhood.
        assert "music" in interests
    profile = results["fig13_profile"]
    assert is_degraded(profile) or profile is None or isinstance(profile, dict)
    comment = results["fig14_comment"]
    assert is_degraded(comment) or isinstance(comment, bool)
    trusted = results["fig15_trusted"]
    assert is_degraded(trusted) or trusted is None or isinstance(trusted, list)
    content = results["fig16_content"]
    assert (is_degraded(content) or isinstance(content, list)
            or content in protocol.ALL_STATUSES)
    message = results["fig17_message"]
    assert is_degraded(message) or message in (
        protocol.SUCCESSFULLY_WRITTEN, protocol.UNSUCCESSFULL,
        protocol.NO_MEMBERS_YET)
    for value in results.values():
        if is_degraded(value):
            assert isinstance(value, Degraded)
            assert value.operation and value.reason
            assert value.attempts >= 1


def assert_converged(bed: Testbed) -> None:
    """Every member sees exactly the groups its interests imply."""
    for name, member in bed.members.items():
        app = member.app
        for interest, expected in EXPECTED_GROUPS.items():
            if name in expected:
                assert set(app.group_members(interest)) == expected, (
                    f"{name} sees {interest} as "
                    f"{app.group_members(interest)}, wanted {expected}")


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_msc_workflows_survive_chaos(seed: int) -> None:
    bed = build_bed(seed)
    assert_converged(bed)  # sanity: fault-free convergence first
    injector = bed.enable_faults(FaultConfig.chaos(CHAOS_LEVEL))
    # Background flapper on top of the per-frame fault draws.
    bed.env.spawn(injector.chaos_flapper(
        list(MEMBER_INTERESTS), mean_interval_s=60.0,
        stop_at=bed.env.now + 400.0))
    results = run_msc_workflows(bed)
    assert_typed(results)

    summary = summarize_testbed_faults(bed)
    assert summary["faults"]["total"] > 0, "chaos run injected nothing"
    assert summary["client"]["attempts"] >= 7
    # Retried or degraded — the faults left *some* visible trace.
    assert (summary["client"]["retries"] + summary["client"]["giveups"]
            + summary["client"]["degraded_results"]
            + summary["faults"]["total"]) > 0

    # Convergence: faults off, let rediscovery + reconcile heal.
    bed.disable_faults()
    bed.run(180.0)
    assert_converged(bed)
    bed.stop()


@pytest.mark.parametrize("seed", CHAOS_SEEDS[:1])
def test_chaos_schedule_is_deterministic(seed: int) -> None:
    """Same seed, same schedule: counters and results replay exactly."""
    def one_run() -> tuple[dict, dict]:
        bed = build_bed(seed)
        bed.enable_faults(FaultConfig.chaos(CHAOS_LEVEL))
        results = run_msc_workflows(bed)
        summary = summarize_testbed_faults(bed)
        bed.stop()
        return results, summary

    results_a, summary_a = one_run()
    results_b, summary_b = one_run()
    assert summary_a == summary_b
    assert {key: is_degraded(value) for key, value in results_a.items()} \
        == {key: is_degraded(value) for key, value in results_b.items()}


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_download_completes_or_fails_typed(seed: int) -> None:
    """Chunked downloads under chaos: resume or a typed failure."""
    bed = build_bed(seed)
    bed.enable_faults(FaultConfig.chaos(CHAOS_LEVEL))
    alice = bed.members["alice"].app
    outcome = bed.execute(alice.download_file("bob", "mixtape.mp3"))
    if is_degraded(outcome):
        assert outcome.operation == protocol.PS_CHECKMEMBERID
    else:
        assert outcome.complete or outcome.failed is not None
        if outcome.complete:
            assert outcome.received_bytes == 96 * 1024
    summary = summarize_testbed_faults(bed)
    assert summary["faults"]["total"] >= 0
    bed.stop()


def test_heavy_chaos_degrades_not_crashes() -> None:
    """At hostile fault rates everything still returns typed values."""
    bed = build_bed(seed=404)
    bed.enable_faults(FaultConfig.chaos(0.5))
    results = run_msc_workflows(bed)
    assert_typed(results)
    summary = summarize_testbed_faults(bed)
    assert summary["faults"]["total"] > 0
    bed.stop()


def test_summary_without_injector_or_testbed() -> None:
    """fault_retry_summary works standalone (no injector installed)."""
    bed = build_bed(seed=1)
    summary = fault_retry_summary(
        (member.app for member in bed.members.values()),
        daemons=(handle.daemon for handle in bed.devices.values()))
    assert "faults" not in summary
    assert summary["client"]["attempts"] >= 0
    assert summary["server"]["bad_requests"] == 0
    bed.stop()
