"""Edge-case tests for the dynamic group discovery engine and the
PeerHood daemon's less-travelled paths."""

from __future__ import annotations


from repro.eval.testbed import Testbed
from repro.mobility import Point


class TestEngineEdgeCases:
    def test_device_lost_during_probe_is_harmless(self):
        """A peer that vanishes between service discovery and the
        interest probe must not wedge the engine."""
        bed = Testbed(seed=201, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        bed.add_member("bob", ["x"])
        # Let discovery find bob, then yank him away the moment his
        # services are reported (the probe will fail to connect).
        alice.device.daemon.on_services_updated(
            lambda device_id: bed.world.move_node("bob", Point(250, 250)))
        bed.run(60.0)
        assert alice.app.group_members("x") in ([], ["alice"])
        # The engine is still functional for later arrivals.
        bed.add_member("carol", ["x"], position=Point(102, 100))
        bed.run(60.0)
        assert "carol" in alice.app.group_members("x")
        bed.stop()

    def test_same_member_on_two_devices_survives_one_departure(self):
        """Multi-device users: the member stays grouped while any of
        their devices remains in range."""
        bed = Testbed(seed=203, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        # 'bob' the person carries two PTDs with the same member id.
        phone = bed.add_device("bob-phone", position=Point(102, 100))
        tablet = bed.add_device("bob-tablet", position=Point(103, 100))
        from repro.community.app import CommunityApp

        for device in (phone, tablet):
            app = CommunityApp(device.library)
            app.create_profile("bob", "bob", "pw", interests=["x"])
            app.login("bob", "pw")
            app.start()
        bed.run(40.0)
        assert alice.app.group_members("x") == ["alice", "bob"]
        bed.world.move_node("bob-phone", Point(250, 250))
        bed.run(40.0)
        # The tablet still anchors bob's membership.
        assert alice.app.group_members("x") == ["alice", "bob"]
        bed.world.move_node("bob-tablet", Point(250, 250))
        bed.run(40.0)
        assert alice.app.group_members("x") == ["alice"]
        bed.stop()

    def test_interest_edit_plus_refresh_updates_groups(self, bed, trio):
        alice, bob, _ = trio
        alice.app.profile.add_interest("movies")
        alice.app.engine.refresh()
        assert "movies" in alice.app.my_groups()
        assert set(alice.app.group_members("movies")) == {"alice", "bob",
                                                          "carol"}
        alice.app.profile.remove_interest("movies")
        alice.app.engine.refresh()
        assert "movies" not in alice.app.my_groups()

    def test_probe_retry_gives_up_until_reconcile_pass(self):
        bed = Testbed(seed=207, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        alice.app.engine.max_retries = 1
        alice.app.engine.retry_interval = 5.0
        sleeper = bed.add_member("sleeper", ["x"], auto_login=False)
        bed.run(120.0)  # discovery + 1 retry, both find nobody logged in
        # The event-driven retry chain gave up: no successful probe yet.
        assert alice.app.group_members("x") == []
        sleeper.app.login("sleeper", "pw")
        bed.run(60.0)
        # The periodic anti-entropy pass re-probes neighbours that are
        # visible but missing from the directory, so the late login is
        # noticed without any (re-)appearance event.
        assert alice.app.engine.reconcile_probes > 0
        assert alice.app.group_members("x") == ["alice", "sleeper"]
        bed.stop()

    def test_engine_start_is_idempotent(self, bed, trio):
        alice, _, _ = trio
        alice.app.engine.start()
        alice.app.engine.start()
        assert alice.app.group_members("football") == ["alice", "bob"]


class TestDaemonEdgeCases:
    def test_preference_falls_back_when_bluetooth_disabled(self):
        bed = Testbed(seed=211)  # bluetooth + wlan
        a = bed.add_device("a", position=Point(100, 100))
        b = bed.add_device("b", position=Point(103, 100))
        b.library.register_service("Echo", None, lambda conn: None)
        bed.run(30.0)
        bed.medium.adapter("a", "bluetooth").enabled = False

        def connect():
            connection = yield from a.library.connect("b", "Echo")
            return connection.technology.name

        assert bed.execute(connect()) == "wlan"
        bed.stop()

    def test_daemon_stop_freezes_neighbourhood(self):
        bed = Testbed(seed=213, technologies=("bluetooth",))
        a = bed.add_device("a", position=Point(100, 100))
        b = bed.add_device("b", position=Point(103, 100))
        bed.run(30.0)
        assert a.daemon.knows("b")
        a.daemon.stop()
        bed.world.move_node("b", Point(250, 250))
        bed.run(60.0)
        # No scans ran, so the stale entry remains (frozen table).
        assert a.daemon.knows("b")
        assert not a.daemon.running
        bed.stop()

    def test_control_channel_tolerates_garbage(self):
        bed = Testbed(seed=217, technologies=("bluetooth",))
        a = bed.add_device("a", position=Point(100, 100))
        bed.add_device("b", position=Point(103, 100))
        bed.run(30.0)

        def send_garbage():
            connection = yield from a.daemon.plugins["bluetooth"].connect(
                "b", "_phd")
            connection.send(["not", "a", "dict"])
            return connection

        connection = bed.execute(send_garbage())
        bed.run(10.0)  # the remote daemon must not crash
        assert bed.devices["b"].daemon.running
        connection.close()
        bed.stop()

    def test_unregistered_service_disappears_from_remote_view(self):
        bed = Testbed(seed=219, technologies=("bluetooth",))
        a = bed.add_device("a", position=Point(100, 100))
        b = bed.add_device("b", position=Point(103, 100))
        b.library.register_service("Ephemeral", None, lambda conn: None)
        bed.run(30.0)
        assert a.library.devices_with_service("Ephemeral") == ["b"]
        b.library.unregister_service("Ephemeral")
        # The next appearance cycle refreshes the view: b leaves and
        # returns (e.g. walks out and back).
        bed.world.move_node("b", Point(250, 250))
        bed.run(40.0)
        bed.world.move_node("b", Point(103, 100))
        bed.run(40.0)
        assert a.library.devices_with_service("Ephemeral") == []
        bed.stop()

    def test_two_isolated_clusters_never_mix(self):
        bed = Testbed(seed=223, technologies=("bluetooth",))
        bed.add_member("a1", ["x"], position=Point(50, 50))
        bed.add_member("a2", ["x"], position=Point(53, 50))
        bed.add_member("b1", ["x"], position=Point(150, 150))
        bed.add_member("b2", ["x"], position=Point(153, 150))
        bed.run(40.0)
        assert bed.members["a1"].app.group_members("x") == ["a1", "a2"]
        assert bed.members["b1"].app.group_members("x") == ["b1", "b2"]
        bed.stop()
