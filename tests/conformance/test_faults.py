"""Backend-parametrized fault mapping and retry parity.

Socket-level failures must land in the same taxonomy the simulated
stack already uses — :class:`NoListenerError` for a missing listener,
``None``-from-recv for a peer that went away, ``ConnectionError`` for
everything the retry layer should absorb — so a retry loop written
against one backend behaves identically on the other.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.community.server import SERVICE_NAME
from repro.eval.testbed import Testbed
from repro.mobility import Point
from repro.net.framing import TruncatedFrameError
from repro.net.messages import FrameError, serialize
from repro.net.retry import RetryPolicy
from repro.net.tcp import TcpServer, dial
from repro.net.transport import ConnectionClosedError, NoListenerError
from repro.radio.standards import WLAN
from repro.simenv import Environment


def _sim_bed():
    bed = Testbed(seed=23, technologies=("wlan",))
    bed.add_device("server", position=Point(100.0, 100.0), start_daemon=False)
    bed.add_device("client", position=Point(105.0, 100.0), start_daemon=False)
    return bed


def _sim_connect(bed):
    client = bed.devices["client"]

    def script():
        connection = yield from client.stack.connect(
            "server", SERVICE_NAME, WLAN)
        return connection

    return bed.execute(script())


async def _tcp_echo_server():
    """A frame-echo server for connection-level fault tests."""
    server = TcpServer(lambda payload, remote_id: payload)
    await server.start()
    return server


class TestListenerGone:
    def test_sim_dial_without_listener_raises_no_listener(self):
        bed = _sim_bed()
        try:
            with pytest.raises(NoListenerError):
                _sim_connect(bed)
        finally:
            bed.stop()
            bed.registry.close_all()

    def test_tcp_dial_without_listener_raises_no_listener(self):
        async def run():
            # Bind a listener, note its port, shut it down: the port is
            # known-free-and-dead, the TCP analogue of "listener gone".
            server = await _tcp_echo_server()
            port = server.port
            await server.stop()
            await dial("127.0.0.1", port)

        with pytest.raises(NoListenerError) as excinfo:
            asyncio.run(run())
        # The shared taxonomy: the same except-clause catches both
        # backends because NoListenerError is a ConnectionError.
        assert isinstance(excinfo.value, ConnectionError)


class TestPeerReset:
    def test_sim_peer_close_resumes_recv_with_none(self):
        bed = _sim_bed()
        try:
            # The server side closes one virtual second after accept —
            # while the client is parked in recv().
            bed.devices["server"].stack.listen(
                SERVICE_NAME,
                lambda connection: bed.env.call_in(1.0, connection.close))

            def script():
                client = bed.devices["client"]
                connection = yield from client.stack.connect(
                    "server", SERVICE_NAME, WLAN)
                payload = yield connection.recv()
                return connection, payload

            connection, payload = bed.execute(script())
            assert payload is None
            with pytest.raises(ConnectionClosedError):
                connection.send({"op": "PS_GETONLINEMEMBERLIST"})
        finally:
            bed.stop()
            bed.registry.close_all()

    def test_tcp_peer_close_resumes_recv_with_none(self):
        async def run():
            server = await _tcp_echo_server()
            try:
                connection = await dial("127.0.0.1", server.port)
                await server.stop()  # server closes all clients
                payload = await connection.recv()
                assert payload is None  # clean EOF == sim's None
                await connection.close()
                with pytest.raises(ConnectionClosedError):
                    await connection.send({"op": "PS_GETONLINEMEMBERLIST"})
            finally:
                await server.stop()

        asyncio.run(run())


class TestMidFrameDisconnect:
    def test_tcp_mid_frame_disconnect_is_truncated_and_connection_error(self):
        frame = serialize({"op": "PS_GETONLINEMEMBERLIST"})

        async def half_frame(reader, writer):
            writer.write(frame[: len(frame) // 2])
            await writer.drain()
            writer.close()

        async def run():
            raw = await asyncio.start_server(half_frame, "127.0.0.1", 0)
            port = raw.sockets[0].getsockname()[1]
            try:
                connection = await dial("127.0.0.1", port)
                with pytest.raises(TruncatedFrameError) as excinfo:
                    await connection.recv()
                # Lands in the retry taxonomy both as a framing problem
                # and as link loss.
                assert isinstance(excinfo.value, FrameError)
                assert isinstance(excinfo.value, ConnectionError)
                await connection.close()
            finally:
                raw.close()
                await raw.wait_closed()

        asyncio.run(run())

    def test_tcp_server_counts_client_mid_frame_disconnect(self):
        async def run():
            server = await _tcp_echo_server()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                frame = serialize({"op": "PS_GETONLINEMEMBERLIST"})
                writer.write(frame[: len(frame) // 2])
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                while server.open_connection_count():
                    await asyncio.sleep(0)
                assert server.frame_errors == 1
                assert reader.at_eof() or True  # reader unused further
            finally:
                await server.stop()

        asyncio.run(run())


class TestRetryParity:
    """The same policy + the same seeded stream must produce the same
    attempt count and backoff schedule on both backends."""

    POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.5, max_delay_s=4.0,
                         attempt_timeout_s=None, budget_s=None)

    def _drive(self, dial_once) -> tuple[int, list[float], bool]:
        """Backend-agnostic retry loop: returns (attempts, delays, ok)."""
        rng = Environment(seed=99).random.stream("retry:conformance")
        delays: list[float] = []
        attempts = 0
        for attempt in range(1, self.POLICY.max_attempts + 1):
            if attempt > 1:
                delays.append(self.POLICY.backoff_delay(attempt - 1, rng))
            attempts += 1
            try:
                dial_once()
            except (ConnectionError, OSError):
                continue
            return attempts, delays, True
        return attempts, delays, False

    def test_backoff_schedule_identical_across_backends(self):
        bed = _sim_bed()
        try:
            sim_outcome = self._drive(lambda: _sim_connect(bed))
        finally:
            bed.stop()
            bed.registry.close_all()

        async def find_dead_port():
            server = await _tcp_echo_server()
            port = server.port
            await server.stop()
            return port

        dead_port = asyncio.run(find_dead_port())
        tcp_outcome = self._drive(
            lambda: asyncio.run(dial("127.0.0.1", dead_port)))

        assert sim_outcome == tcp_outcome
        attempts, delays, ok = sim_outcome
        assert not ok
        assert attempts == self.POLICY.max_attempts
        assert len(delays) == self.POLICY.max_attempts - 1
