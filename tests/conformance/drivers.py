"""Backend drivers: replay one conformance exchange, capture the wire.

Each driver prepares an identical server (fresh
:func:`~repro.community.exchanges.build_server_store`), replays the
exchange's steps from the client side and returns a
:class:`~repro.eval.conformance.Transcript` of every frame as the
client saw it.  The drivers differ *only* in the transport underneath;
that is the whole point.
"""

from __future__ import annotations

import asyncio

from repro.community import protocol
from repro.community.exchanges import (
    Exchange,
    Mutate,
    Reconnect,
    Send,
    build_server_store,
)
from repro.community.server import SERVICE_NAME, CommunityServer, CommunityService
from repro.eval.conformance import Transcript
from repro.eval.testbed import Testbed
from repro.mobility import Point
from repro.net.messages import serialize
from repro.net.tcp import TcpServer, dial
from repro.radio.standards import WLAN

#: Transport backends the conformance matrix covers.
BACKENDS = ("sim", "tcp")


def _check_status(exchange: Exchange, step: Send, reply: object) -> None:
    if step.expect_status is None:
        return
    status = protocol.response_status(reply)
    assert status == step.expect_status, (
        f"{exchange.name}: {step.request.get('op', '?')} answered "
        f"{status}, expected {step.expect_status}")


def run_sim_exchange(exchange: Exchange, *, seed: int = 11) -> Transcript:
    """Replay ``exchange`` over the simulated backend."""
    bed = Testbed(seed=seed, technologies=("wlan",))
    try:
        server_device = bed.add_device("server", position=Point(100.0, 100.0),
                                       start_daemon=False)
        client_device = bed.add_device("client", position=Point(105.0, 100.0),
                                       start_daemon=False)
        store = build_server_store()
        server = CommunityServer(server_device.library, store)
        server.start()
        transcript = Transcript("sim", exchange.name)

        def script():
            # The simulated send delivers a structural copy priced at
            # serialize()'s exact byte count, so serializing the
            # payloads at the endpoints reproduces the wire bytes.
            connection = yield from client_device.stack.connect(
                "server", SERVICE_NAME, WLAN)
            for step in exchange.steps:
                if isinstance(step, Mutate):
                    step.apply(store)
                elif isinstance(step, Reconnect):
                    connection.close()
                    connection = yield from client_device.stack.connect(
                        "server", SERVICE_NAME, WLAN)
                else:
                    assert isinstance(step, Send)
                    transcript.record("send", serialize(step.request))
                    connection.send(step.request)
                    reply = yield connection.recv()
                    assert reply is not None, \
                        f"{exchange.name}: connection died mid-exchange"
                    transcript.record("recv", serialize(reply))
                    _check_status(exchange, step, reply)
            connection.close()

        bed.execute(script())
        bed.run(1.0)  # let the serving processes observe the close
        assert server_device.stack.open_connection_count() == 0, \
            "simulated server leaked connections"
        assert client_device.stack.open_connection_count() == 0, \
            "simulated client leaked connections"
        server.stop()
        return transcript
    finally:
        bed.stop()
        bed.registry.close_all()


def run_tcp_exchange(exchange: Exchange) -> Transcript:
    """Replay ``exchange`` over the asyncio-TCP backend."""
    return asyncio.run(_tcp_exchange(exchange))


async def _tcp_exchange(exchange: Exchange) -> Transcript:
    store = build_server_store()
    service = CommunityService(store, device_id="server")
    server = TcpServer(service.handle_request)
    await server.start()
    transcript = Transcript("tcp", exchange.name)
    try:
        connection = await dial("127.0.0.1", server.port,
                                on_frame=transcript.record)
        try:
            for step in exchange.steps:
                if isinstance(step, Mutate):
                    step.apply(store)
                elif isinstance(step, Reconnect):
                    await connection.close()
                    connection = await dial("127.0.0.1", server.port,
                                            on_frame=transcript.record)
                else:
                    assert isinstance(step, Send)
                    await connection.send(step.request)
                    reply = await connection.recv()
                    assert reply is not None, \
                        f"{exchange.name}: server closed mid-exchange"
                    _check_status(exchange, step, reply)
        finally:
            await connection.close()
        while server.open_connection_count():
            await asyncio.sleep(0)
        return transcript
    finally:
        await server.stop()
        assert server.open_connection_count() == 0, \
            "TCP server leaked client connections"
        assert not server.listening, "TCP listener leaked"


def run_exchange(backend: str, exchange: Exchange) -> Transcript:
    """Replay ``exchange`` on the named backend."""
    if backend == "sim":
        return run_sim_exchange(exchange)
    if backend == "tcp":
        return run_tcp_exchange(exchange)
    raise ValueError(f"unknown backend {backend!r}")
