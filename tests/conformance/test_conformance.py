"""Cross-backend conformance: byte-identical wire transcripts.

The same PS_* exchange, replayed over the simulated medium and over
real asyncio-TCP sockets, must put the exact same frames on the wire —
frame-for-frame, byte-for-byte.  A divergence writes both transcripts
to ``conformance-artifacts/`` (uploaded by CI) before failing.
"""

from __future__ import annotations

import pytest

from repro.community.exchanges import CONFORMANCE_EXCHANGES, Send
from repro.eval.conformance import first_divergence, render_diff, write_artifacts

from tests.conformance.drivers import run_sim_exchange, run_tcp_exchange


@pytest.mark.parametrize("exchange", CONFORMANCE_EXCHANGES,
                         ids=lambda exchange: exchange.name)
class TestTranscriptEquivalence:
    def test_transcripts_byte_identical(self, exchange):
        sim = run_sim_exchange(exchange)
        tcp = run_tcp_exchange(exchange)
        if first_divergence(sim, tcp) is not None:
            paths = write_artifacts([sim, tcp])
            pytest.fail(render_diff(sim, tcp)
                        + "\nartifacts: "
                        + ", ".join(str(path) for path in paths))

    def test_transcript_covers_every_send(self, exchange):
        """One send + one recv frame per Send step, in order."""
        transcript = run_tcp_exchange(exchange)
        sends = [step for step in exchange.steps if isinstance(step, Send)]
        directions = [frame.direction for frame in transcript.frames]
        assert directions == ["send", "recv"] * len(sends)


def test_every_exchange_name_unique():
    names = [exchange.name for exchange in CONFORMANCE_EXCHANGES]
    assert len(names) == len(set(names))


def test_transcripts_are_deterministic():
    """Two replays of the same script produce identical bytes."""
    exchange = CONFORMANCE_EXCHANGES[0]
    first = run_tcp_exchange(exchange)
    second = run_tcp_exchange(exchange)
    assert first_divergence(first, second) is None
