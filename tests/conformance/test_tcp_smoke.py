"""Concurrency smoke: ~100 OS-level clients against one TCP server.

Not a microbenchmark — the assertions are about *hygiene*: every client
gets correct answers, the server's request count adds up, and when the
dust settles nothing leaked (no client connections, no listener).
Marked ``slow``; CI runs it in the nightly job.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.community import protocol
from repro.community.exchanges import (
    CLIENT_MEMBER,
    SERVER_MEMBER,
    build_server_store,
)
from repro.community.server import CommunityService
from repro.net.tcp import TcpServer, dial

CLIENTS = 100
REQUESTS_PER_CLIENT = 4


async def _client_session(port: int, index: int) -> int:
    """One client: dial, run a few PS_* requests, close cleanly."""
    connection = await dial("127.0.0.1", port)
    try:
        served = 0
        for _ in range(REQUESTS_PER_CLIENT):
            await connection.send(protocol.make_request(
                protocol.PS_GETONLINEMEMBERLIST))
            reply = await connection.recv()
            assert reply is not None
            assert protocol.response_status(reply) == protocol.STATUS_OK
            assert reply["members"][0]["member_id"] == SERVER_MEMBER
            served += 1
        # A second operation type, so the smoke isn't one hot path.
        await connection.send(protocol.make_request(
            protocol.PS_GETPROFILE, member_id=SERVER_MEMBER,
            requester=f"{CLIENT_MEMBER}-{index}"))
        reply = await connection.recv()
        assert reply is not None
        assert protocol.response_status(reply) == protocol.STATUS_OK
        return served + 1
    finally:
        await connection.close()


@pytest.mark.slow
def test_hundred_concurrent_clients_no_leaks():
    async def run():
        service = CommunityService(build_server_store(), device_id="server")
        server = TcpServer(service.handle_request)
        await server.start()
        try:
            results = await asyncio.gather(
                *(_client_session(server.port, index)
                  for index in range(CLIENTS)))
            assert results == [REQUESTS_PER_CLIENT + 1] * CLIENTS
            assert server.requests_handled == CLIENTS * (REQUESTS_PER_CLIENT + 1)
            assert service.requests_served == server.requests_handled
            assert service.bad_requests == 0
            assert server.frame_errors == 0
            # Every client closed cleanly: no leaked connections.
            while server.open_connection_count():
                await asyncio.sleep(0)
            assert server.open_connection_count() == 0
        finally:
            await server.stop()
        assert not server.listening
        # The profile recorded every distinct visitor exactly once.
        active = service.store.active
        assert active is not None
        assert len(active.viewers) == CLIENTS

    asyncio.run(run())


@pytest.mark.slow
def test_interleaved_connect_disconnect_churn():
    """Clients arriving and leaving in waves never leak server state."""
    async def run():
        service = CommunityService(build_server_store(), device_id="server")
        server = TcpServer(service.handle_request)
        await server.start()
        try:
            for _wave in range(5):
                await asyncio.gather(
                    *(_client_session(server.port, index)
                      for index in range(20)))
                while server.open_connection_count():
                    await asyncio.sleep(0)
        finally:
            await server.stop()
        assert not server.listening
        assert server.open_connection_count() == 0

    asyncio.run(run())
