"""Tests for the PeerHood middleware: daemon, library, plugins,
monitoring and seamless connectivity (Table 3 functionality)."""

from __future__ import annotations

import pytest

from repro.eval.testbed import Testbed
from repro.mobility import LinearCrossing, Point
from repro.peerhood import (
    PHD_PORT,
    SeamlessConnectivityManager,
    ServiceExistsError,
    ServiceInfo,
    ServiceNotFoundError,
)
from repro.radio.bluetooth import PiconetFullError
from repro.radio.medium import NotReachableError


@pytest.fixture
def pair():
    """Two idle PeerHood devices 5 m apart, discovery running."""
    bed = Testbed(seed=3)
    a = bed.add_device("a", position=Point(100, 100))
    b = bed.add_device("b", position=Point(105, 100))
    yield bed, a, b
    bed.stop()


class TestServiceInfo:
    def test_make_sorts_attributes(self):
        info = ServiceInfo.make("svc", "dev", {"b": "2", "a": "1"})
        assert info.attributes == (("a", "1"), ("b", "2"))

    def test_attribute_lookup(self):
        info = ServiceInfo.make("svc", "dev", {"version": "0.2"})
        assert info.attribute("version") == "0.2"
        assert info.attribute("missing", "default") == "default"


class TestDeviceDiscovery:
    def test_devices_find_each_other(self, pair):
        bed, a, b = pair
        bed.run(30.0)
        assert [n.device_id for n in a.library.get_device_listing()] == ["b"]
        assert [n.device_id for n in b.library.get_device_listing()] == ["a"]

    def test_discovery_takes_realistic_time(self, pair):
        bed, a, b = pair
        bed.run(0.5)  # inquiry still in progress
        assert a.library.get_device_listing() == []
        bed.run(30.0)
        assert a.library.get_device_listing()

    def test_neighbor_knows_technologies(self, pair):
        bed, a, b = pair
        bed.run(30.0)
        neighbor = a.library.get_device_listing()[0]
        assert neighbor.technologies == {"bluetooth", "wlan"}

    def test_device_leaving_is_lost(self, pair):
        bed, a, b = pair
        bed.run(30.0)
        bed.world.move_node("b", Point(250, 250))
        bed.run(40.0)
        assert a.library.get_device_listing() == []

    def test_lost_callback_fires(self, pair):
        bed, a, b = pair
        lost = []
        a.daemon.on_device_lost(lost.append)
        bed.run(30.0)
        bed.world.move_node("b", Point(250, 250))
        bed.run(40.0)
        assert lost == ["b"]

    def test_found_callback_fires_once(self, pair):
        bed, a, b = pair
        found = []
        a.daemon.on_device_found(found.append)
        bed.run(60.0)
        assert found == ["b"]


class TestServiceDiscovery:
    def test_remote_services_listed_with_attributes(self, pair):
        bed, a, b = pair
        b.library.register_service("Chess", {"skill": "beginner"},
                                   lambda conn: None)
        bed.run(30.0)
        services = a.library.get_service_listing("b")
        assert [s.name for s in services] == ["Chess"]
        assert services[0].attribute("skill") == "beginner"

    def test_local_services_in_listing(self, pair):
        bed, a, b = pair
        a.library.register_service("Local", None, lambda conn: None)
        assert [s.name for s in a.library.get_service_listing()] == ["Local"]

    def test_duplicate_registration_rejected(self, pair):
        bed, a, _ = pair
        a.library.register_service("S", None, lambda conn: None)
        with pytest.raises(ServiceExistsError):
            a.library.register_service("S", None, lambda conn: None)

    def test_unregister_disappears_locally(self, pair):
        bed, a, _ = pair
        a.library.register_service("S", None, lambda conn: None)
        a.library.unregister_service("S")
        assert a.library.get_service_listing() == []

    def test_devices_with_service(self, pair):
        bed, a, b = pair
        b.library.register_service("Wanted", None, lambda conn: None)
        bed.run(30.0)
        assert a.library.devices_with_service("Wanted") == ["b"]
        assert a.library.devices_with_service("Other") == []

    def test_phd_port_always_listening(self, pair):
        bed, a, _ = pair
        assert a.stack.listening_on(PHD_PORT)


class TestConnections:
    def test_connect_to_remote_service(self, pair):
        bed, a, b = pair
        received = []

        def handler(conn):
            def serve():
                payload = yield conn.recv()
                received.append(payload)
            bed.env.spawn(serve())

        b.library.register_service("Echo", None, handler)
        bed.run(30.0)

        def client():
            connection = yield from a.library.connect("b", "Echo")
            connection.send({"ping": 1})
            return connection

        bed.execute(client())
        bed.run(5.0)
        assert received == [{"ping": 1}]

    def test_require_advertised_rejects_unknown(self, pair):
        bed, a, b = pair
        bed.run(30.0)

        def client():
            yield from a.library.connect("b", "Ghost",
                                         require_advertised=True)

        with pytest.raises(ServiceNotFoundError):
            bed.execute(client())

    def test_connect_prefers_cheapest_technology(self, pair):
        bed, a, b = pair
        b.library.register_service("Echo", None, lambda conn: None)
        bed.run(30.0)

        def client():
            connection = yield from a.library.connect("b", "Echo")
            return connection.technology.name

        assert bed.execute(client()) == "bluetooth"

    def test_connect_unreachable_raises(self, pair):
        bed, a, b = pair
        bed.run(30.0)
        bed.world.move_node("b", Point(250, 250))

        def client():
            try:
                yield from a.library.connect("b", "anything")
            except NotReachableError:
                return "unreachable"

        assert bed.execute(client()) == "unreachable"

    def test_piconet_capacity_enforced_through_plugin(self):
        bed = Testbed(seed=5, technologies=("bluetooth",))
        hub = bed.add_device("hub", position=Point(100, 100))
        for index in range(8):
            spoke = bed.add_device(f"s{index}",
                                   position=Point(101 + index * 0.5, 100))
            spoke.library.register_service("Echo", None, lambda conn: None)
        bed.run(40.0)

        def fill():
            kept = []
            try:
                for index in range(8):
                    connection = yield from hub.library.connect(
                        f"s{index}", "Echo")
                    kept.append(connection)
            except PiconetFullError:
                return len(kept)
            return len(kept)

        assert bed.execute(fill(), timeout=600.0) == 7
        bed.stop()


class TestMonitoring:
    def test_monitor_reports_appear_and_disappear(self):
        bed = Testbed(seed=11, technologies=("bluetooth",))
        observer = bed.add_device("obs", position=Point(100, 100))
        appeared, disappeared = [], []
        observer.library.monitor("walker",
                                 on_appear=appeared.append,
                                 on_disappear=disappeared.append)
        # Walker crosses through the observer's Bluetooth range.
        bed.add_device("walker", position=Point(80, 100),
                       model=LinearCrossing(Point(80, 100), Point(130, 100),
                                            speed=1.0))
        bed.run(120.0)
        assert appeared == ["walker"]
        assert disappeared == ["walker"]
        bed.stop()

    def test_monitor_cancel_stops_notifications(self, pair):
        bed, a, b = pair
        events = []
        monitor = a.library.monitor("b", on_appear=events.append)
        monitor.cancel()
        bed.run(30.0)
        assert events == []
        assert monitor.appearances == 0

    def test_monitor_visible_property(self, pair):
        bed, a, b = pair
        monitor = a.library.monitor("b")
        assert not monitor.visible
        bed.run(30.0)
        assert monitor.visible


class TestSeamlessConnectivity:
    def _handover_bed(self):
        bed = Testbed(seed=13)  # bluetooth + wlan
        a = bed.add_device("a", position=Point(100, 100))
        b = bed.add_device("b", position=Point(102, 100))
        b.library.register_service("Echo", None, lambda conn: None)
        bed.run(30.0)
        return bed, a, b

    def test_handover_bt_to_wlan_when_walking_away(self):
        bed, a, b = self._handover_bed()
        manager = SeamlessConnectivityManager(a.daemon)
        handovers = []

        def client():
            connection = yield from a.daemon.plugins["bluetooth"].connect(
                "b", "Echo")
            return connection

        connection = bed.execute(client())
        manager.supervise(connection,
                          on_handover=lambda c, t: handovers.append(t))
        # b walks out of Bluetooth range but stays in WLAN range.
        bed.world.node("b").model = LinearCrossing(Point(102, 100),
                                                   Point(130, 100), 2.0)
        bed.run(60.0)
        assert handovers == ["wlan"]
        assert connection.technology.name == "wlan"
        assert not connection.closed
        # The migrated connection still carries data.
        connection.send({"still": "alive"})
        bed.stop()

    def test_no_alternative_records_failure(self):
        bed = Testbed(seed=17, technologies=("bluetooth",))
        a = bed.add_device("a", position=Point(100, 100))
        b = bed.add_device("b", position=Point(102, 100))
        b.library.register_service("Echo", None, lambda conn: None)
        bed.run(30.0)
        manager = SeamlessConnectivityManager(a.daemon)

        def client():
            connection = yield from a.daemon.plugins["bluetooth"].connect(
                "b", "Echo")
            return connection

        connection = bed.execute(client())
        manager.supervise(connection)
        bed.world.move_node("b", Point(200, 200))
        bed.run(10.0)
        assert manager.history
        assert not manager.history[-1].succeeded
        bed.stop()

    def test_closed_connections_pruned(self):
        bed, a, b = self._handover_bed()
        manager = SeamlessConnectivityManager(a.daemon)

        def client():
            connection = yield from a.daemon.plugins["bluetooth"].connect(
                "b", "Echo")
            return connection

        connection = bed.execute(client())
        manager.supervise(connection)
        connection.close()
        bed.run(5.0)
        assert manager.supervised_count == 0
        bed.stop()
