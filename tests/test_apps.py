"""Tests for the §4.4 PeerHood applications: access control, guidance
and fitness."""

from __future__ import annotations

import pytest

from repro.apps.access_control import AccessControlledDoor, DoorKeyClient
from repro.apps.fitness import (
    FitnessDevice,
    FitnessTracker,
    analyse,
    heart_rate_zone,
)
from repro.apps.guidance import GuidancePoint, GuidanceRouter, Traveler
from repro.eval.testbed import Testbed
from repro.mobility import PathFollower, Point


class TestAccessControl:
    @pytest.fixture
    def door_bed(self):
        bed = Testbed(seed=61, technologies=("bluetooth",))
        door_device = bed.add_device("lab-door", position=Point(100, 100))
        door = AccessControlledDoor(door_device.library, "ComLab room 6604",
                                    authorized={"alice"})
        alice = bed.add_device("alice", position=Point(102, 100))
        mallory = bed.add_device("mallory", position=Point(103, 100))
        bed.run(30.0)
        yield bed, door, DoorKeyClient(alice.library), \
            DoorKeyClient(mallory.library)
        bed.stop()

    def test_door_advertised_with_resource(self, door_bed):
        bed, door, alice_key, _ = door_bed
        assert alice_key.nearby_doors() == [("lab-door", "ComLab room 6604")]

    def test_authorized_key_opens_door(self, door_bed):
        bed, door, alice_key, _ = door_bed
        reply = bed.execute(alice_key.request_access("lab-door"))
        assert reply["granted"]
        assert door.is_open
        assert door.log[-1].granted

    def test_door_relocks_after_hold_time(self, door_bed):
        bed, door, alice_key, _ = door_bed
        bed.execute(alice_key.request_access("lab-door"))
        assert door.is_open
        bed.run(door.hold_open_s + 1.0)
        assert not door.is_open

    def test_unauthorized_key_refused_and_logged(self, door_bed):
        bed, door, _, mallory_key = door_bed
        reply = bed.execute(mallory_key.request_access("lab-door"))
        assert not reply["granted"]
        assert reply["reason"] == "not authorized"
        assert not door.is_open
        assert [entry.granted for entry in door.log] == [False]

    def test_revocation_takes_effect(self, door_bed):
        bed, door, alice_key, _ = door_bed
        door.revoke("alice")
        reply = bed.execute(alice_key.request_access("lab-door"))
        assert not reply["granted"]

    def test_grant_adds_new_key(self, door_bed):
        bed, door, _, mallory_key = door_bed
        door.grant("mallory")
        reply = bed.execute(mallory_key.request_access("lab-door"))
        assert reply["granted"]


class TestGuidance:
    @pytest.fixture
    def campus(self):
        bed = Testbed(seed=67, technologies=("bluetooth",))
        router = GuidanceRouter()
        places = {
            "entrance": Point(100, 100),
            "corridor": Point(106, 100),
            "library": Point(106, 106),
            "lab": Point(112, 106),
        }
        for name, position in places.items():
            router.add_place(name, position)
        router.connect_places("entrance", "corridor")
        router.connect_places("corridor", "library")
        router.connect_places("library", "lab")
        points = {}
        for name, position in places.items():
            device = bed.add_device(f"gp-{name}", position=position)
            points[name] = GuidancePoint(device.library, router, name)
        traveler_device = bed.add_device("traveler",
                                         position=Point(101, 100))
        bed.run(30.0)
        yield bed, router, points, Traveler(traveler_device.library)
        bed.stop()

    def test_router_shortest_path(self, campus):
        _, router, _, _ = campus
        assert router.route("entrance", "lab") == [
            "entrance", "corridor", "library", "lab"]

    def test_traveler_sees_nearby_points(self, campus):
        _, _, _, traveler = campus
        places = [place for _, place in traveler.visible_points()]
        assert "entrance" in places

    def test_route_query_returns_next_hop(self, campus):
        bed, _, points, traveler = campus
        reply = bed.execute(traveler.ask_route("lab"))
        assert reply["ok"]
        assert reply["next"] == "corridor"
        assert reply["path"][-1] == "lab"
        assert sum(p.queries_served for p in points.values()) == 1

    def test_unknown_destination_reported(self, campus):
        bed, _, _, traveler = campus
        reply = bed.execute(traveler.ask_route("narnia"))
        assert not reply["ok"]

    def test_traveler_walks_route_to_destination(self, campus):
        bed, router, _, traveler = campus
        reply = bed.execute(traveler.ask_route("lab"))
        # Follow guidance hop by hop: walk to the advised position,
        # re-ask, repeat until the guidance says we are there.
        for _ in range(6):
            if reply["next"] == reply["here"]:
                break
            target = Point(*reply["next_position"])
            node = bed.world.node("traveler")
            node.model = PathFollower([node.position, target], speed=2.0)
            bed.run(max(6.0,
                        bed.world.distance_between("traveler",
                                                   f"gp-{reply['next']}")
                        / 2.0 + 6.0))
            bed.run(25.0)  # let discovery catch up at the new spot
            reply = bed.execute(traveler.ask_route("lab"))
        assert reply["here"] == "lab"
        assert bed.world.distance_between(
            "traveler", "gp-lab") < 8.0


class TestFitness:
    def test_heart_rate_zones(self):
        assert heart_rate_zone(90) == "warm up"
        assert heart_rate_zone(115) == "fat burn"
        assert heart_rate_zone(140) == "aerobic"
        assert heart_rate_zone(160) == "anaerobic"
        assert heart_rate_zone(180) == "maximum"
        with pytest.raises(ValueError):
            heart_rate_zone(-1)

    def test_analyse_batch(self):
        feedback = analyse([120.0, 130.0, 140.0])
        assert feedback.samples == 3
        assert feedback.mean_bpm == pytest.approx(130.0)
        assert feedback.peak_bpm == 140.0
        assert feedback.zone == "aerobic"
        with pytest.raises(ValueError):
            analyse([])

    def test_workout_session_over_peerhood(self):
        bed = Testbed(seed=71, technologies=("bluetooth",))
        treadmill_device = bed.add_device("treadmill",
                                          position=Point(100, 100))
        treadmill = FitnessDevice(treadmill_device.library, "treadmill")
        runner_device = bed.add_device("runner", position=Point(101, 100))
        tracker = FitnessTracker(runner_device.library)
        bed.run(30.0)

        assert tracker.visible_equipment() == [("treadmill", "treadmill")]
        batches = [[100.0, 110.0], [130.0, 135.0], [155.0, 160.0]]
        feedback = bed.execute(tracker.workout("treadmill", batches))
        assert [f.zone for f in feedback] == ["warm up", "aerobic",
                                              "anaerobic"]
        assert treadmill.batches_analysed == 3
        assert len(tracker.session_feedback) == 3
        bed.stop()

    def test_empty_batch_rejected_by_device(self):
        bed = Testbed(seed=73, technologies=("bluetooth",))
        device = bed.add_device("bike", position=Point(100, 100))
        FitnessDevice(device.library, "bike")
        user = bed.add_device("user", position=Point(101, 100))
        tracker = FitnessTracker(user.library)
        bed.run(30.0)
        feedback = bed.execute(tracker.workout("bike", [[]]))
        assert feedback == []  # error batches produce no feedback
        bed.stop()
