"""Unit tests for generator processes, signals and timers."""

from __future__ import annotations

import pytest

from repro.simenv import (
    Delay,
    Environment,
    PeriodicTimer,
    Signal,
    WaitProcess,
    WaitSignal,
)


class TestDelayYield:
    def test_delay_suspends_for_virtual_time(self, env: Environment):
        trace = []

        def worker():
            trace.append(("start", env.now))
            yield Delay(2.5)
            trace.append(("end", env.now))
            return "done"

        process = env.spawn(worker())
        env.run()
        assert trace == [("start", 0.0), ("end", 2.5)]
        assert process.result == "done"

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-0.1)

    def test_zero_delay_allowed(self, env: Environment):
        def worker():
            yield Delay(0.0)
            return env.now

        process = env.spawn(worker())
        env.run()
        assert process.result == 0.0

    def test_result_before_finish_raises(self, env: Environment):
        def worker():
            yield Delay(1.0)

        process = env.spawn(worker())
        with pytest.raises(RuntimeError):
            _ = process.result


class TestSignals:
    def test_wait_signal_resumes_with_value(self, env: Environment):
        signal = Signal("test")

        def waiter():
            value = yield WaitSignal(signal)
            return value

        process = env.spawn(waiter())
        env.call_in(1.0, signal.fire, "payload")
        env.run()
        assert process.result == "payload"

    def test_signal_fire_twice_raises(self):
        signal = Signal()
        signal.fire()
        with pytest.raises(RuntimeError):
            signal.fire()

    def test_late_waiter_fires_immediately(self):
        signal = Signal()
        signal.fire("early")
        got = []
        signal.wait(got.append)
        assert got == ["early"]

    def test_signal_repr_shows_state(self):
        signal = Signal("named")
        assert "named" in repr(signal)
        signal.fire()
        assert "fired" in repr(signal)


class TestProcessComposition:
    def test_wait_for_child_process_result(self, env: Environment):
        def child():
            yield Delay(1.0)
            return 21

        def parent():
            value = yield env.spawn(child())
            return value * 2

        process = env.spawn(parent())
        env.run()
        assert process.result == 42

    def test_wait_process_wrapper(self, env: Environment):
        def child():
            yield Delay(1.0)
            return "x"

        def parent():
            child_process = env.spawn(child())
            value = yield WaitProcess(child_process)
            return value

        process = env.spawn(parent())
        env.run()
        assert process.result == "x"

    def test_child_exception_propagates_to_parent(self, env: Environment):
        def child():
            yield Delay(1.0)
            raise ValueError("from child")

        def parent():
            try:
                yield env.spawn(child())
            except ValueError as exc:
                return f"caught {exc}"

        process = env.spawn(parent())
        env.run()
        assert process.result == "caught from child"

    def test_failed_process_result_reraises(self, env: Environment):
        def failing():
            yield Delay(1.0)
            raise KeyError("lost")

        process = env.spawn(failing())
        # A waiter observes the failure, so run() does not raise.
        def observer():
            try:
                yield process
            except KeyError:
                return "observed"

        watcher = env.spawn(observer())
        env.run()
        assert watcher.result == "observed"
        with pytest.raises(KeyError):
            _ = process.result

    def test_yield_from_subgenerator(self, env: Environment):
        def inner():
            yield Delay(1.0)
            return 10

        def outer():
            value = yield from inner()
            yield Delay(1.0)
            return value + 5

        process = env.spawn(outer())
        env.run()
        assert process.result == 15
        assert env.now == 2.0

    def test_invalid_yield_raises_inside_process(self, env: Environment):
        def bad():
            try:
                yield "not a yieldable"
            except TypeError:
                return "typed"

        process = env.spawn(bad())
        env.run()
        assert process.result == "typed"

    def test_kill_stops_process(self, env: Environment):
        ticks = []

        def looper():
            while True:
                yield Delay(1.0)
                ticks.append(env.now)

        process = env.spawn(looper())
        env.run(until=3.5)
        process.kill()
        env.run(until=10.0)
        assert not process.alive
        assert ticks == [1.0, 2.0, 3.0]

    def test_spawn_at_delays_first_step(self, env: Environment):
        trace = []

        def worker():
            trace.append(env.now)
            yield Delay(1.0)

        env.spawn_at(5.0, worker())
        env.run()
        assert trace == [5.0]

    def test_process_repr(self, env: Environment):
        def worker():
            yield Delay(1.0)

        process = env.spawn(worker(), name="my-proc")
        assert "my-proc" in repr(process)
        env.run()
        assert "done" in repr(process)


class TestPeriodicTimer:
    def test_fires_on_interval(self, env: Environment):
        times = []
        PeriodicTimer(env, 2.0, lambda: times.append(env.now))
        env.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_start_immediately(self, env: Environment):
        times = []
        PeriodicTimer(env, 2.0, lambda: times.append(env.now),
                      start_immediately=True)
        env.run(until=3.0)
        assert times == [0.0, 2.0]

    def test_stop_prevents_future_fires(self, env: Environment):
        times = []
        timer = PeriodicTimer(env, 1.0, lambda: times.append(env.now))
        env.run(until=2.5)
        timer.stop()
        env.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not timer.running

    def test_stop_from_inside_callback(self, env: Environment):
        timer_holder = []

        def callback():
            timer_holder[0].stop()

        timer_holder.append(PeriodicTimer(env, 1.0, callback))
        env.run(until=5.0)
        assert timer_holder[0].fire_count == 1

    def test_jitter_varies_but_stays_bounded(self, env: Environment):
        times = []
        PeriodicTimer(env, 10.0, lambda: times.append(env.now), jitter=1.0)
        env.run(until=100.0)
        gaps = [b - a for a, b in zip(times, times[1:], strict=False)]
        assert all(9.0 <= gap <= 11.0 for gap in gaps)
        assert len(set(round(gap, 6) for gap in gaps)) > 1

    def test_invalid_interval_rejected(self, env: Environment):
        with pytest.raises(ValueError):
            PeriodicTimer(env, 0.0, lambda: None)

    def test_invalid_jitter_rejected(self, env: Environment):
        with pytest.raises(ValueError):
            PeriodicTimer(env, 1.0, lambda: None, jitter=1.0)


class TestRandomStreams:
    def test_named_streams_are_independent(self, env: Environment):
        a1 = env.random.stream("a").random()
        # Drawing from b must not disturb a's sequence.
        env.random.stream("b").random()
        a2 = env.random.stream("a").random()

        other = Environment(seed=42)
        b1 = other.random.stream("a").random()
        b2 = other.random.stream("a").random()
        assert (a1, a2) == (b1, b2)

    def test_different_names_different_sequences(self, env: Environment):
        assert (env.random.stream("x").random()
                != env.random.stream("y").random())

    def test_fork_derives_stable_child(self):
        from repro.simenv import RandomStreams

        child_a = RandomStreams(1).fork("device")
        child_b = RandomStreams(1).fork("device")
        assert child_a.seed == child_b.seed
        assert RandomStreams(1).fork("other").seed != child_a.seed
