"""Server-side edge cases and protocol robustness (incl. fuzzing)."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community import protocol
from repro.community.profile import ProfileStore
from repro.community.server import CommunityServer
from repro.eval.testbed import Testbed
from repro.mobility import Point


@pytest.fixture
def duo():
    bed = Testbed(seed=301, technologies=("bluetooth",))
    alice = bed.add_member("alice", ["x"])
    bob = bed.add_member("bob", ["x"])
    bed.run(30.0)
    yield bed, alice, bob
    bed.stop()


def _raw_exchange(bed, alice, payload):
    """Send an arbitrary payload to bob's server, return the reply."""

    def run():
        connection = yield from alice.app.pool.ensure("bob")
        connection.send(payload)
        reply = yield connection.recv()
        return reply

    return bed.execute(run())


class TestServerRobustness:
    def test_garbage_request_yields_bad_request(self, duo):
        bed, alice, _ = duo
        reply = _raw_exchange(bed, alice, {"op": "PS_NOT_REAL"})
        assert protocol.response_status(reply) == protocol.BAD_REQUEST

    def test_missing_fields_yield_bad_request(self, duo):
        bed, alice, _ = duo
        reply = _raw_exchange(bed, alice, {"op": protocol.PS_GETPROFILE})
        assert protocol.response_status(reply) == protocol.BAD_REQUEST

    def test_non_dict_payload_closes_nothing(self, duo):
        bed, alice, bob = duo
        reply = _raw_exchange(bed, alice, [1, 2, 3])
        assert protocol.response_status(reply) == protocol.BAD_REQUEST
        # The same connection still serves valid requests afterwards.
        reply = _raw_exchange(bed, alice, protocol.make_request(
            protocol.PS_GETONLINEMEMBERLIST))
        assert protocol.response_status(reply) == protocol.STATUS_OK

    def test_many_sequential_requests_one_connection(self, duo):
        bed, alice, bob = duo

        def run():
            connection = yield from alice.app.pool.ensure("bob")
            statuses = []
            for _ in range(10):
                connection.send(protocol.make_request(
                    protocol.PS_GETONLINEMEMBERLIST))
                reply = yield connection.recv()
                statuses.append(protocol.response_status(reply))
            return statuses

        assert bed.execute(run()) == [protocol.STATUS_OK] * 10
        assert bob.app.server.requests_served >= 10

    def test_every_member_op_refused_after_logout(self, duo):
        bed, alice, bob = duo
        bob.app.logout()
        for op, params in (
                (protocol.PS_GETONLINEMEMBERLIST, {}),
                (protocol.PS_GETINTERESTLIST, {}),
                (protocol.PS_GETINTERESTEDMEMBERLIST, {"interest": "x"}),
                (protocol.PS_GETPROFILE, {"member_id": "bob",
                                          "requester": "alice"}),
                (protocol.PS_CHECKMEMBERID, {"member_id": "bob"}),
                (protocol.PS_GETTRUSTEDFRIEND, {"member_id": "bob"}),
        ):
            reply = _raw_exchange(bed, alice,
                                  protocol.make_request(op, **params))
            assert protocol.response_status(reply) == \
                protocol.NO_MEMBERS_YET, op

    def test_trust_policy_acceptance_path(self):
        bed = Testbed(seed=303, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        bob_device = bed.add_device("bob", position=Point(103, 100))
        from repro.community.app import CommunityApp

        bob_app = CommunityApp(bob_device.library,
                               trust_policy=lambda requester:
                               requester == "alice")
        bob_app.create_profile("bob", "bob", "pw", interests=["x"])
        bob_app.login("bob", "pw")
        bob_app.start()
        bed.run(30.0)
        assert bed.execute(alice.app.client.request_trust("bob"))
        assert bob_app.profile.trusts("alice")
        bed.stop()

    def test_server_stop_refuses_new_connections(self, duo):
        bed, alice, bob = duo
        bob.app.server.stop()
        alice.app.pool.drop("bob")

        def run():
            connection = yield from alice.app.pool.ensure("bob")
            return connection

        with pytest.raises(ConnectionError):
            bed.execute(run())


# -- dispatch fuzzing ----------------------------------------------------------

_keys = st.sampled_from(["op", "member_id", "requester", "interest",
                         "comment", "receiver", "sender", "subject",
                         "body", "name", "offset", "length", "junk"])
_values = st.one_of(
    st.text(alphabet=string.printable, max_size=20),
    st.integers(min_value=-10**6, max_value=10**6),
    st.none(),
    st.booleans(),
    st.lists(st.integers(), max_size=3),
    st.sampled_from(sorted(protocol.OPERATIONS)))
_fuzzed_requests = st.dictionaries(_keys, _values, max_size=6)


class TestDispatchFuzz:
    @settings(deadline=None, max_examples=150)
    @given(payload=_fuzzed_requests)
    def test_dispatch_always_returns_a_known_status(self, payload):
        """No request payload may crash the server or produce an
        unknown status — errors become BAD_REQUEST, not exceptions."""
        store = ProfileStore()
        store.create_profile("bob", "bob", "pw", interests=["x"])
        store.login("bob", "pw")
        server = CommunityServer.__new__(CommunityServer)
        server.store = store
        server.recorder = None
        server.trust_policy = None
        server.requests_served = 0

        class _Env:
            now = 1.0

        server.env = _Env()
        from repro.community.filetransfer import FileTransferService

        server.file_service = FileTransferService(store)
        try:
            op, params = protocol.parse_request(payload)
        except protocol.ProtocolError:
            response = protocol.make_response(protocol.BAD_REQUEST)
        else:
            try:
                response = server._dispatch(op, params)
            except (TypeError, ValueError, KeyError):
                # Parameter *values* of the wrong shape are the
                # transport's BAD_REQUEST too in the full server loop.
                response = protocol.make_response(protocol.BAD_REQUEST)
        assert protocol.response_status(response) in protocol.ALL_STATUSES