"""Tests for churn/discovery metrics and the lossy-link model."""

from __future__ import annotations

import dataclasses

import pytest

from repro.community.groups import Group
from repro.eval.metrics import churn_stats, discovery_stats, summarize_engine
from repro.eval.testbed import Testbed
from repro.mobility import Point
from repro.net.stack import NetworkStack, StackRegistry
from repro.radio import BLUETOOTH, Technology
from repro.simenv import Environment


class TestChurnStats:
    def test_counts_and_peak(self):
        group = Group("g", 0.0)
        group.add("a", 1.0)
        group.add("b", 2.0)
        group.remove("a", 5.0)
        group.add("c", 6.0)
        stats = churn_stats(group)
        assert stats.joins == 3
        assert stats.leaves == 1
        assert stats.unique_members == 3
        assert stats.peak_size == 2

    def test_mean_stay_completed_only(self):
        group = Group("g", 0.0)
        group.add("a", 0.0)
        group.remove("a", 10.0)
        group.add("b", 5.0)  # still present
        stats = churn_stats(group)
        assert stats.mean_stay_s == pytest.approx(10.0)

    def test_mean_stay_truncates_open_stays_at_now(self):
        group = Group("g", 0.0)
        group.add("a", 0.0)
        group.remove("a", 10.0)
        group.add("b", 5.0)
        stats = churn_stats(group, now=25.0)
        assert stats.mean_stay_s == pytest.approx((10.0 + 20.0) / 2.0)

    def test_empty_history(self):
        stats = churn_stats(Group("g", 0.0))
        assert stats.joins == 0
        assert stats.mean_stay_s is None


class TestDiscoveryStats:
    def test_live_engine_stats(self):
        bed = Testbed(seed=81, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["football"])
        bed.add_member("bob", ["football"])
        bed.add_member("carol", ["chess"])
        bed.run(40.0)
        stats = discovery_stats(alice.app.engine)
        assert stats.probes == 2
        assert stats.matched_probes == 1  # only bob matches
        assert stats.mean_probe_s is not None and stats.mean_probe_s > 0
        assert stats.max_probe_s >= stats.mean_probe_s

        summary = summarize_engine(alice.app.engine, now=bed.env.now)
        assert "football" in summary["groups"]
        assert summary["groups"]["football"].peak_size == 2
        bed.stop()

    def test_empty_engine(self):
        bed = Testbed(seed=83)
        alice = bed.add_member("alice", ["x"])
        stats = discovery_stats(alice.app.engine)
        assert stats.probes == 0
        assert stats.mean_probe_s is None
        bed.stop()


class TestLossyLinks:
    def _lossy_pair(self, loss: float):
        env = Environment(seed=5)
        from repro.mobility.world import World
        from repro.radio.medium import Medium

        world = World(env)
        world.add_node("a", Point(0, 0))
        world.add_node("b", Point(3, 0))
        medium = Medium(world)
        lossy = dataclasses.replace(BLUETOOTH, frame_loss_rate=loss)
        medium.attach("a", lossy)
        medium.attach("b", lossy)
        registry = StackRegistry()
        stack_a = NetworkStack(env, medium, "a", registry)
        stack_b = NetworkStack(env, medium, "b", registry)
        accepted = []
        stack_b.listen("svc", accepted.append)

        def client():
            connection = yield from stack_a.connect("b", "svc", lossy)
            return connection

        process = env.spawn(client())
        env.run(until=30.0)
        return env, world, process.result

    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            Technology("t", 10.0, 1000.0, 0.0, 0.0, 0.0, frame_loss_rate=1.0)
        with pytest.raises(ValueError):
            Technology("t", 10.0, 1000.0, 0.0, 0.0, 0.0, frame_loss_rate=-0.1)

    def test_no_loss_means_no_retransmissions(self):
        env, world, connection = self._lossy_pair(0.0)
        for _ in range(50):
            connection.send({"x": 1})
        assert connection.retransmissions == 0
        world.stop()

    def test_loss_inflates_transfer_time_but_delivers(self):
        env, world, connection = self._lossy_pair(0.4)
        times = [connection.send({"x": index}) for index in range(100)]
        assert connection.retransmissions > 0
        env.run(until=env.now + 60.0)
        # Reliable delivery: every message arrives despite loss.
        assert connection.peer.pending() == 100
        # Retransmitted frames took proportionally longer.
        base = min(times)
        assert max(times) >= 2 * base
        world.stop()

    def test_lossy_runs_are_deterministic(self):
        _, world_a, connection_a = self._lossy_pair(0.3)
        times_a = [connection_a.send({"x": i}) for i in range(20)]
        world_a.stop()
        _, world_b, connection_b = self._lossy_pair(0.3)
        times_b = [connection_b.send({"x": i}) for i in range(20)]
        world_b.stop()
        assert times_a == times_b
