"""Unit tests for the discrete-event kernel: clock, queue, environment."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simenv import Environment, EventQueue, SimClock, SimulationError
from repro.simenv.clock import SimClock as Clock
from repro.simenv.events import _COMPACT_MIN_CANCELLED


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_forward(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_allowed(self):
        clock = SimClock()
        clock.advance_to(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        clock.advance_to(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_repr_mentions_time(self):
        assert "now=" in repr(Clock())


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append(3))
        queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        while queue:
            queue.pop().callback()
        assert fired == [1, 2, 3]

    def test_ties_broken_by_schedule_order(self):
        queue = EventQueue()
        fired = []
        for label in ("first", "second", "third"):
            queue.push(1.0, lambda label=label: fired.append(label))
        while queue:
            queue.pop().callback()
        assert fired == ["first", "second", "third"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_bool_false_when_all_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert not queue


class TestCalendarQueueEdges:
    """Compaction, promotion and recycling edges of the calendar queue."""

    def test_cancel_then_reschedule_identical_timestamp(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("a"))
        doomed = queue.push(1.0, lambda: fired.append("doomed"))
        queue.push(1.0, lambda: fired.append("b"))
        doomed.cancel()
        # The replacement shares the timestamp but fires *after* the
        # survivors: sequence order is scheduling order, always.
        queue.push(1.0, lambda: fired.append("c"))
        while queue:
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_far_future_bucket_preserves_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1000.25, lambda: fired.append("far-late"))
        queue.push(0.1, lambda: fired.append("near"))
        queue.push(1000.0, lambda: fired.append("far-early"))
        while queue:
            queue.pop().callback()
        assert fired == ["near", "far-early", "far-late"]

    def test_current_bucket_compaction_mid_pop_before(self):
        queue = EventQueue()
        survivors = []
        doomed = [queue.push(0.01 * i, lambda: None)
                  for i in range(2 * _COMPACT_MIN_CANCELLED)]
        keep = [queue.push(0.01 * i + 0.005,
                           lambda i=i: survivors.append(i))
                for i in range(8)]
        fired_first = queue.pop_before(0.001)
        assert fired_first is doomed[0]
        # Cancelling the rest triggers compaction while pop_before's
        # cursor sits mid-bucket; the survivors must come out intact
        # and in order.
        for event in doomed[1:]:
            event.cancel()
        assert len(queue) == len(keep)
        while queue:
            event = queue.pop_before(None)
            event.callback()
        assert survivors == list(range(8))

    def test_future_bucket_compaction_drops_empty_bucket(self):
        queue = EventQueue()
        far = [queue.push(100.0, lambda: None)
               for _ in range(2 * _COMPACT_MIN_CANCELLED)]
        queue.push(200.0, lambda: None)
        for event in far:
            event.cancel()
        assert len(queue) == 1
        assert queue.peek_time() == 200.0

    def test_promotion_skips_cancelled_entries(self):
        queue = EventQueue()
        fired = []
        doomed = queue.push(50.0, lambda: fired.append("doomed"))
        queue.push(50.0, lambda: fired.append("live"))
        doomed.cancel()
        assert queue.pop().callback() or fired == ["live"]
        assert not queue

    def test_cancel_after_pop_is_inert(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is event
        popped.cancel()  # late cancel of a fired event: no accounting
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_run_loop_recycles_unreferenced_events(self, env: Environment):
        env.call_in(0.5, lambda: None)
        env.run()
        recycled = env.queue.push(9.0, lambda: None)
        assert recycled.cancelled is False
        assert recycled.time == 9.0
        # The free list had exactly the one fired event in it.
        assert env.queue._free == []

    def test_held_handles_are_never_recycled(self, env: Environment):
        held = env.call_in(0.5, lambda: None)
        env.run()
        fresh = env.queue.push(9.0, lambda: None)
        assert fresh is not held

    @settings(max_examples=120, deadline=None)
    @given(ops=st.lists(st.one_of(
        st.tuples(st.just("push"),
                  st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("cancel"), st.integers(min_value=0)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("pop_before"),
                  st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False)),
    ), min_size=1, max_size=60))
    def test_interleavings_preserve_time_sequence_order(self, ops):
        """Any schedule/cancel/pop interleaving matches a sorted model."""
        queue = EventQueue(bucket_width=0.75)
        model: list[tuple[float, int]] = []  # live (time, sequence)
        handles = {}
        sequence = 0
        floor = 0.0  # popped events only ever move forward in time
        for op in ops:
            if op[0] == "push":
                time = max(op[1], floor)
                handles[sequence] = queue.push(time, lambda: None)
                model.append((time, sequence))
                sequence += 1
            elif op[0] == "cancel":
                if model:
                    victim = model[op[1] % len(model)]
                    handles[victim[1]].cancel()
                    model.remove(victim)
            elif op[0] == "pop":
                if model:
                    expected = min(model)
                    event = queue.pop()
                    assert (event.time, event.sequence) == expected
                    model.remove(expected)
                    floor = expected[0]
                else:
                    with pytest.raises(IndexError):
                        queue.pop()
            else:
                until = op[1]
                expected = min(model) if model else None
                event = queue.pop_before(until)
                if expected is not None and expected[0] <= until:
                    assert event is not None
                    assert (event.time, event.sequence) == expected
                    model.remove(expected)
                    floor = expected[0]
                else:
                    assert event is None
            assert len(queue) == len(model)
        while model:
            expected = min(model)
            event = queue.pop()
            assert (event.time, event.sequence) == expected
            model.remove(expected)
        assert not queue


class TestEnvironment:
    def test_run_advances_time(self, env: Environment):
        env.call_in(5.0, lambda: None)
        assert env.run() == 5.0

    def test_run_until_stops_early(self, env: Environment):
        fired = []
        env.call_in(10.0, lambda: fired.append("late"))
        env.run(until=5.0)
        assert env.now == 5.0
        assert fired == []
        env.run(until=15.0)
        assert fired == ["late"]

    def test_run_until_advances_clock_when_idle(self, env: Environment):
        env.run(until=7.0)
        assert env.now == 7.0

    def test_call_at_in_past_rejected(self, env: Environment):
        env.call_in(1.0, lambda: None)
        env.run()
        with pytest.raises(ValueError):
            env.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, env: Environment):
        with pytest.raises(ValueError):
            env.call_in(-1.0, lambda: None)

    def test_call_with_args(self, env: Environment):
        got = []
        env.call_in(1.0, got.append, "value")
        env.run()
        assert got == ["value"]

    def test_step_returns_false_when_idle(self, env: Environment):
        assert env.step() is False

    def test_step_executes_one_event(self, env: Environment):
        fired = []
        env.call_in(1.0, lambda: fired.append(1))
        env.call_in(2.0, lambda: fired.append(2))
        assert env.step() is True
        assert fired == [1]

    def test_nested_scheduling_runs(self, env: Environment):
        fired = []

        def outer():
            fired.append("outer")
            env.call_in(1.0, lambda: fired.append("inner"))

        env.call_in(1.0, outer)
        env.run()
        assert fired == ["outer", "inner"]
        assert env.now == 2.0

    def test_timeout_signal_fires_with_value(self, env: Environment):
        signal = env.timeout_signal(3.0, value="done")
        env.run()
        assert signal.fired
        assert signal.value == "done"

    def test_unobserved_process_failure_raises(self, env: Environment):
        def exploding():
            yield from ()
            raise RuntimeError("boom")

        env.spawn(exploding(), name="exploder")
        with pytest.raises(SimulationError, match="exploder"):
            env.run()

    def test_determinism_same_seed_same_draws(self):
        draws_a = [Environment(seed=9).random.stream("s").random()
                   for _ in range(1)]
        draws_b = [Environment(seed=9).random.stream("s").random()
                   for _ in range(1)]
        assert draws_a == draws_b

    def test_repr(self, env: Environment):
        assert "Environment" in repr(env)
