"""Unit tests for the discrete-event kernel: clock, queue, environment."""

from __future__ import annotations

import pytest

from repro.simenv import Environment, EventQueue, SimClock, SimulationError
from repro.simenv.clock import SimClock as Clock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_forward(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_allowed(self):
        clock = SimClock()
        clock.advance_to(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        clock.advance_to(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_repr_mentions_time(self):
        assert "now=" in repr(Clock())


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append(3))
        queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        while queue:
            queue.pop().callback()
        assert fired == [1, 2, 3]

    def test_ties_broken_by_schedule_order(self):
        queue = EventQueue()
        fired = []
        for label in ("first", "second", "third"):
            queue.push(1.0, lambda label=label: fired.append(label))
        while queue:
            queue.pop().callback()
        assert fired == ["first", "second", "third"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_bool_false_when_all_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert not queue


class TestEnvironment:
    def test_run_advances_time(self, env: Environment):
        env.call_in(5.0, lambda: None)
        assert env.run() == 5.0

    def test_run_until_stops_early(self, env: Environment):
        fired = []
        env.call_in(10.0, lambda: fired.append("late"))
        env.run(until=5.0)
        assert env.now == 5.0
        assert fired == []
        env.run(until=15.0)
        assert fired == ["late"]

    def test_run_until_advances_clock_when_idle(self, env: Environment):
        env.run(until=7.0)
        assert env.now == 7.0

    def test_call_at_in_past_rejected(self, env: Environment):
        env.call_in(1.0, lambda: None)
        env.run()
        with pytest.raises(ValueError):
            env.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, env: Environment):
        with pytest.raises(ValueError):
            env.call_in(-1.0, lambda: None)

    def test_call_with_args(self, env: Environment):
        got = []
        env.call_in(1.0, got.append, "value")
        env.run()
        assert got == ["value"]

    def test_step_returns_false_when_idle(self, env: Environment):
        assert env.step() is False

    def test_step_executes_one_event(self, env: Environment):
        fired = []
        env.call_in(1.0, lambda: fired.append(1))
        env.call_in(2.0, lambda: fired.append(2))
        assert env.step() is True
        assert fired == [1]

    def test_nested_scheduling_runs(self, env: Environment):
        fired = []

        def outer():
            fired.append("outer")
            env.call_in(1.0, lambda: fired.append("inner"))

        env.call_in(1.0, outer)
        env.run()
        assert fired == ["outer", "inner"]
        assert env.now == 2.0

    def test_timeout_signal_fires_with_value(self, env: Environment):
        signal = env.timeout_signal(3.0, value="done")
        env.run()
        assert signal.fired
        assert signal.value == "done"

    def test_unobserved_process_failure_raises(self, env: Environment):
        def exploding():
            yield from ()
            raise RuntimeError("boom")

        env.spawn(exploding(), name="exploder")
        with pytest.raises(SimulationError, match="exploder"):
            env.run()

    def test_determinism_same_seed_same_draws(self):
        draws_a = [Environment(seed=9).random.stream("s").random()
                   for _ in range(1)]
        draws_b = [Environment(seed=9).random.stream("s").random()
                   for _ in range(1)]
        assert draws_a == draws_b

    def test_repr(self, env: Environment):
        assert "Environment" in repr(env)
