"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.eval.testbed import Testbed
from repro.mobility.geometry import Point
from repro.mobility.world import World
from repro.net.stack import NetworkStack, StackRegistry
from repro.radio.medium import Medium
from repro.radio.standards import BLUETOOTH, WLAN
from repro.simenv import Environment


@pytest.fixture
def env() -> Environment:
    """A fresh deterministic environment."""
    return Environment(seed=42)


@pytest.fixture
def world(env: Environment) -> World:
    """An empty 200x200 m world ticking at 0.5 s."""
    return World(env)


@pytest.fixture
def medium(world: World) -> Medium:
    """A radio medium over the world."""
    return Medium(world)


@pytest.fixture
def registry():
    """A fresh per-simulation stack registry, emptied at teardown.

    The explicit ``close_all`` guarantees listener and connection
    state cannot leak between tests, however a test ends — which the
    backend-parametrized conformance matrix relies on.
    """
    stacks = StackRegistry()
    yield stacks
    stacks.close_all()


@pytest.fixture
def linked_pair(env, world, medium, registry):
    """Two Bluetooth+WLAN devices 5 m apart with network stacks."""
    world.add_node("a", Point(0.0, 0.0))
    world.add_node("b", Point(5.0, 0.0))
    for device_id in ("a", "b"):
        medium.attach(device_id, BLUETOOTH)
        medium.attach(device_id, WLAN)
    stack_a = NetworkStack(env, medium, "a", registry)
    stack_b = NetworkStack(env, medium, "b", registry)
    return stack_a, stack_b


@pytest.fixture
def bed() -> Testbed:
    """A small Bluetooth+WLAN testbed, stopped at teardown."""
    testbed = Testbed(seed=7)
    yield testbed
    testbed.stop()
    testbed.registry.close_all()


@pytest.fixture
def trio(bed: Testbed):
    """Three members with overlapping interests, discovery settled."""
    alice = bed.add_member("alice", ["football", "music"])
    bob = bed.add_member("bob", ["football", "movies"])
    carol = bed.add_member("carol", ["music", "movies"])
    bed.run(30.0)
    return alice, bob, carol
