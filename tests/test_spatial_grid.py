"""Spatial grid + incremental invalidation vs the brute-force oracle.

The grid-backed world and the eviction-based medium must be *exactly*
equivalent to the ``REPRO_SPATIAL_INDEX=0`` brute-force path: same
``nodes_within`` results, same reachability verdicts, same neighbour
listings — across arbitrary interleavings of placements, moves,
removals and adapter power toggles.  The hypothesis machine below
drives both implementations side by side with the same operation
stream and compares every observable after every operation.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.geometry import Point, Rect
from repro.mobility.grid import SpatialGrid
from repro.mobility.world import DEFAULT_CELL_SIZE, World
from repro.radio.medium import Medium
from repro.radio.standards import BLUETOOTH, WLAN
from repro.simenv import Environment

BOUNDS = Rect(0.0, 0.0, 300.0, 300.0)
NODE_IDS = tuple(f"n{i}" for i in range(8))
TECHNOLOGIES = (BLUETOOTH, WLAN)

coords = st.floats(min_value=0.0, max_value=300.0,
                   allow_nan=False, allow_infinity=False)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.sampled_from(NODE_IDS), coords, coords),
        st.tuples(st.just("move"), st.sampled_from(NODE_IDS), coords, coords),
        st.tuples(st.just("remove"), st.sampled_from(NODE_IDS)),
        st.tuples(st.just("toggle"), st.sampled_from(NODE_IDS),
                  st.sampled_from([t.name for t in TECHNOLOGIES])),
    ),
    min_size=1, max_size=30)


def _build(spatial: bool) -> tuple[World, Medium]:
    env = Environment(seed=7)
    world = World(env, bounds=BOUNDS,
                  cell_size=DEFAULT_CELL_SIZE if spatial else None)
    if not spatial:
        world._grid = None  # brute-force oracle: no spatial index
    medium = Medium(world)
    return world, medium


def _attach_all(world: World, medium: Medium, node_id: str) -> None:
    for technology in TECHNOLOGIES:
        medium.attach(node_id, technology)


def _observables(world: World, medium: Medium) -> dict:
    """Everything a client could observe, for cross-implementation
    comparison."""
    listing: dict = {"nodes": {}}
    for node in world:
        listing["nodes"][node.node_id] = (node.position.x, node.position.y)
    present = sorted(listing["nodes"])
    for node_id in present:
        for radius in (10.0, 60.0, 150.0):
            listing[f"within:{node_id}:{radius}"] = [
                other.node_id for other in world.nodes_within(node_id, radius)]
    for technology in TECHNOLOGIES:
        for node_id in present:
            listing[f"nbr:{node_id}:{technology.name}"] = \
                medium.neighbors(node_id, technology.name)
        for a in present:
            for b in present:
                listing[f"reach:{a}:{b}:{technology.name}"] = \
                    medium.reachable(a, b, technology.name)
    return listing


class _SidePair:
    """The grid implementation and the brute-force oracle, driven in
    lockstep."""

    def __init__(self) -> None:
        self.grid_world, self.grid_medium = _build(spatial=True)
        self.brute_world, self.brute_medium = _build(spatial=False)
        self.alive: set[str] = set()

    def apply(self, op: tuple) -> None:
        kind = op[0]
        if kind == "add":
            _, node_id, x, y = op
            if node_id in self.alive:
                return
            for world, medium in ((self.grid_world, self.grid_medium),
                                  (self.brute_world, self.brute_medium)):
                world.add_node(node_id, Point(x, y))
                _attach_all(world, medium, node_id)
            self.alive.add(node_id)
        elif kind == "move":
            _, node_id, x, y = op
            if node_id not in self.alive:
                return
            self.grid_world.move_node(node_id, Point(x, y))
            self.brute_world.move_node(node_id, Point(x, y))
        elif kind == "remove":
            _, node_id = op
            if node_id not in self.alive:
                return
            for world, medium in ((self.grid_world, self.grid_medium),
                                  (self.brute_world, self.brute_medium)):
                for technology in TECHNOLOGIES:
                    medium.detach(node_id, technology.name)
                world.remove_node(node_id)
            self.alive.discard(node_id)
        else:  # toggle
            _, node_id, technology_name = op
            if node_id not in self.alive:
                return
            for medium in (self.grid_medium, self.brute_medium):
                adapter = medium.adapter(node_id, technology_name)
                adapter.enabled = not adapter.enabled

    def check(self) -> None:
        grid_view = _observables(self.grid_world, self.grid_medium)
        brute_view = _observables(self.brute_world, self.brute_medium)
        assert grid_view == brute_view


@settings(deadline=None, max_examples=60)
@given(ops=operations)
def test_grid_and_incremental_match_brute_force_oracle(ops) -> None:
    """Grid + eviction caching is observationally identical to O(N^2)."""
    pair = _SidePair()
    for op in ops:
        pair.apply(op)
        pair.check()


# -- SpatialGrid unit properties ----------------------------------------------


@settings(deadline=None, max_examples=60)
@given(points=st.lists(st.tuples(coords, coords), min_size=1, max_size=12),
       center=st.tuples(coords, coords),
       radius=st.floats(min_value=1.0, max_value=150.0))
def test_candidates_is_a_superset_of_the_disc(points, center, radius) -> None:
    """Grid candidate lists may over-approximate but never miss."""
    grid = SpatialGrid(25.0)
    for index, (x, y) in enumerate(points):
        grid.insert(f"p{index}", Point(x, y))
    cx, cy = center
    candidates = set(grid.candidates(Point(cx, cy), radius))
    for index, (x, y) in enumerate(points):
        if math.hypot(x - cx, y - cy) <= radius:
            assert f"p{index}" in candidates


# -- incremental invalidation regressions -------------------------------------


@pytest.fixture
def crowded():
    env = Environment(seed=3)
    world = World(env, bounds=BOUNDS)
    assert world.grid is not None, "spatial index must be on by default"
    medium = Medium(world)
    for i in range(6):
        node_id = f"d{i}"
        world.add_node(node_id, Point(30.0 * i + 5.0, 40.0))
        medium.attach(node_id, BLUETOOTH)
        medium.attach(node_id, WLAN)
    return env, world, medium


def test_no_movement_preserves_stamps_and_caches(crowded) -> None:
    """A tick in which nobody moved must leave memoized state intact."""
    env, world, medium = crowded
    listings = {d: medium.neighbors(d, "wlan") for d in ("d0", "d3")}
    stamps = {d: world.region_stamp(d, WLAN.range_m)
              for d in ("d0", "d3")}
    verdicts = dict(medium._reachable_cache)
    env.run(until=env.now + 2.0)  # several world ticks, all stationary
    for d in ("d0", "d3"):
        assert world.region_stamp(d, WLAN.range_m) == stamps[d]
        assert medium.neighbors(d, "wlan") == listings[d]
    assert medium._reachable_cache == verdicts


def test_single_mover_evicts_only_its_own_pairs(crowded) -> None:
    """Moving one node drops exactly that node's cached verdicts."""
    env, world, medium = crowded
    for a in ("d0", "d1", "d4", "d5"):
        for b in ("d0", "d1", "d4", "d5"):
            medium.reachable(a, b, "wlan")
    survivor_keys = [key for key in medium._reachable_cache
                     if "d5" not in key]
    assert survivor_keys, "need unrelated cached verdicts for the test"
    world.move_node("d5", Point(200.0, 200.0))
    for key in survivor_keys:
        assert key in medium._reachable_cache, \
            f"verdict {key} wrongly evicted by an unrelated move"
    assert not any("d5" in key for key in medium._reachable_cache), \
        "the mover's own verdicts must be dropped"


def test_within_cell_move_keeps_unrelated_listings(crowded) -> None:
    """A move that stays inside one cell only disturbs discs covering
    that cell — far-away neighbour listings keep their stamp."""
    env, world, medium = crowded
    far = medium.neighbors("d5", "bluetooth")  # d5 at x=155, d0 at x=5
    far_stamp = world.region_stamp("d5", BLUETOOTH.range_m)
    origin = world.node("d0").position
    world.move_node("d0", Point(origin.x + 1.0, origin.y))  # same cell
    assert world.region_stamp("d5", BLUETOOTH.range_m) == far_stamp
    assert medium.neighbors("d5", "bluetooth") == far


def test_adapter_toggle_touches_only_that_device(crowded) -> None:
    """Power-toggling one radio invalidates only that device's pairs."""
    env, world, medium = crowded
    for a in ("d0", "d1"):
        for b in ("d0", "d1"):
            medium.reachable(a, b, "wlan")
    unrelated = [key for key in medium._reachable_cache
                 if "d5" not in key]
    medium.adapter("d5", "wlan").enabled = False
    for key in unrelated:
        assert key in medium._reachable_cache
    assert medium.reachable("d4", "d5", "wlan") is False
    medium.adapter("d5", "wlan").enabled = True
    assert medium.reachable("d4", "d5", "wlan") is True


def test_batch_coalesces_to_one_report() -> None:
    """Bulk population inside world.batch() fires one merged report."""
    env = Environment(seed=1)
    world = World(env, bounds=BOUNDS)
    reports = []
    ticks = []
    world.on_moves(reports.append)
    world.on_movement(lambda: ticks.append(1))
    with world.batch():
        for i in range(10):
            world.add_node(f"b{i}", Point(10.0 * i, 10.0))
        world.move_node("b3", Point(35.0, 12.0))
        world.remove_node("b9")
        assert reports == [] and ticks == []
    assert len(reports) == 1 and len(ticks) == 1
    report = reports[0]
    assert report.added == tuple(f"b{i}" for i in range(10))
    assert report.moved == ("b3",)
    assert report.removed == ("b9",)
    with world.batch():
        pass  # nothing changed: listeners must stay silent
    assert len(reports) == 1 and len(ticks) == 1


def test_stamp_detects_cover_shift_despite_equal_epoch_sums() -> None:
    """A moved query centre must never validate a stale listing.

    Epoch *sums* over two different cell covers can coincide: here the
    old cover carries its changes in cell (-1, 0) and the new cover an
    equal amount in cell (2, 0), so a sum-only stamp would compare
    equal across the shift and a cached neighbour listing taken at the
    old centre would survive the move.  The stamp embeds the cover
    bounds precisely to kill this aliasing (found as a one-sighting
    divergence between sharded and single-process 100k-device runs).
    """
    grid = SpatialGrid(cell_size=10.0)
    grid.insert("mover", Point(5.0, 5.0))  # cell (0, 0): epoch 1
    grid.insert("a", Point(-5.0, 5.0))     # cell (-1, 0): epoch 1
    grid.remove("a")                       # cell (-1, 0): epoch 2
    old_stamp = grid.region_stamp(Point(5.0, 5.0), 10.0)
    grid.insert("b", Point(25.0, 5.0))     # cell (2, 0): epoch 1
    grid.remove("b")                       # cell (2, 0): epoch 2
    # Disc shifts one cell right: cover x-range goes [-1, 1] -> [0, 2],
    # dropping epoch-2 cell (-1, 0) and gaining epoch-2 cell (2, 0) —
    # the epoch sums over both covers are identical.
    new_stamp = grid.region_stamp(Point(15.0, 5.0), 10.0)
    assert old_stamp[-1] == new_stamp[-1]  # the sums really do collide
    assert old_stamp != new_stamp
