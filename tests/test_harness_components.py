"""Tests for Table 8 harness components, the pool, and radio extras."""

from __future__ import annotations

import pytest

from repro.community import protocol
from repro.eval.table8 import ConsoleUi, build_sns, run_table8
from repro.eval.testbed import Testbed
from repro.mobility import Point
from repro.radio import all_technologies
from repro.sns.sites import FACEBOOK_2008, HI5_2008


class TestTable8Components:
    def test_console_ui_defaults_are_positive(self):
        ui = ConsoleUi()
        assert ui.nav_s > 0
        assert ui.scan_s_per_item > 0
        assert ui.menu_read_s > 0
        assert ui.profile_read_s > 0

    def test_build_sns_seeds_the_test_group(self):
        server = build_sns(FACEBOOK_2008, seed=1, group_members=12)
        group = server.database.group("England Football")
        assert len(group.members) >= 12
        assert server.database.user("tester0")

    def test_build_sns_site_selection_changes_weights(self):
        fb = build_sns(FACEBOOK_2008, seed=1)
        hi5 = build_sns(HI5_2008, seed=1)
        assert fb.site.profile_cached
        assert not hi5.site.profile_cached

    def test_run_table8_is_deterministic(self):
        first = run_table8(seed=5, trials=1)
        second = run_table8(seed=5, trials=1)
        for column in first:
            assert first[column] == second[column]


class TestPoolBehaviour:
    @pytest.fixture
    def pooled(self):
        bed = Testbed(seed=307, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        bed.add_member("bob", ["x"])
        bed.run(30.0)
        yield bed, alice
        bed.stop()

    def test_drop_closes_connection(self, pooled):
        bed, alice = pooled
        bed.execute(alice.app.view_all_members())
        connection = alice.app.pool.connection_to("bob")
        alice.app.pool.drop("bob")
        assert connection.closed
        assert alice.app.pool.connection_to("bob") is None

    def test_broken_connection_reopened_on_next_ensure(self, pooled):
        bed, alice = pooled
        bed.execute(alice.app.view_all_members())
        first = alice.app.pool.connection_to("bob")
        first.close()

        def reensure():
            connection = yield from alice.app.pool.ensure("bob")
            return connection

        second = bed.execute(reensure())
        assert second is not first
        assert not second.closed
        assert alice.app.pool.opened_total == 2

    def test_close_all_empties_pool(self, pooled):
        bed, alice = pooled
        bed.execute(alice.app.view_all_members())
        alice.app.pool.close_all()
        assert len(alice.app.pool) == 0
        assert alice.app.pool.connected_ids() == []


class TestRadioExtras:
    def test_zigbee_slower_than_wlan_for_bulk(self):
        techs = all_technologies()
        bulk = 1_000_000
        assert (techs["zigbee"].transfer_time(bulk)
                > techs["wlan"].transfer_time(bulk))

    def test_rfid_is_near_field(self):
        techs = all_technologies()
        assert techs["rfid"].range_m <= 1.0
        assert not techs["rfid"].in_range(2.0)

    def test_gprs_adapter_costs_accumulate_through_stack(self):
        bed = Testbed(seed=311, technologies=("gprs",))
        alice = bed.add_member("alice", ["x"])
        bed.add_member("bob", ["x"])
        bed.run(60.0)
        status = bed.execute(alice.app.send_message("bob", "s", "b"),
                             timeout=300.0)
        assert status == protocol.SUCCESSFULLY_WRITTEN
        adapter = bed.medium.adapter("alice", "gprs")
        assert adapter.bytes_sent > 0
        assert adapter.cost_incurred > 0.0
        assert bed.gateway.total_cost() > 0.0
        bed.stop()

    def test_irda_needs_near_contact_for_discovery(self):
        bed = Testbed(seed=313, technologies=("bluetooth",))
        a = bed.add_device("a", position=Point(100, 100))
        bed.add_device("b", position=Point(100.5, 100))
        techs = all_technologies()
        bed.medium.attach("a", techs["irda"])
        bed.medium.attach("b", techs["irda"])
        assert bed.medium.reachable("a", "b", "irda")
        bed.world.move_node("b", Point(102, 100))
        assert not bed.medium.reachable("a", "b", "irda")
        bed.stop()
