"""Vectorized medium sweeps vs the scalar path — lockstep oracle.

The numpy whole-population sweep (:mod:`repro.radio.sweep`) must
produce listings *bit-identical* to the scalar region-stamped path:
same neighbours, same order, across arbitrary interleavings of moves,
adapter toggles and detaches.  The tests drive a vectorized medium and
a scalar medium (``REPRO_VECTOR_SWEEP=0``) through identical operation
streams and compare every listing after every operation, and check the
kernel itself against a brute-force O(n^2) oracle.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.geometry import Point, Rect
from repro.mobility.world import World
from repro.radio import sweep
from repro.radio.medium import (Medium, vector_sweep_enabled,
                                VECTOR_SWEEP_MIN_DEVICES)
from repro.radio.standards import BLUETOOTH, WLAN
from repro.simenv import Environment

pytestmark = pytest.mark.skipif(not sweep.available(),
                                reason="numpy not available")

BOUNDS = Rect(0.0, 0.0, 300.0, 300.0)
NODE_IDS = tuple(f"n{i:02d}" for i in range(12))
TECHNOLOGIES = (BLUETOOTH, WLAN)

coords = st.floats(min_value=0.0, max_value=300.0,
                   allow_nan=False, allow_infinity=False)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("move"), st.sampled_from(NODE_IDS), coords, coords),
        st.tuples(st.just("toggle"), st.sampled_from(NODE_IDS),
                  st.sampled_from([t.name for t in TECHNOLOGIES])),
        st.tuples(st.just("detach"), st.sampled_from(NODE_IDS),
                  st.sampled_from([t.name for t in TECHNOLOGIES])),
    ),
    min_size=1, max_size=25)


def _build(monkeypatch_env: dict[str, str]) -> tuple[World, Medium]:
    env = Environment(seed=7)
    world = World(env, bounds=BOUNDS)
    medium = Medium(world)
    return world, medium


def _populate(world: World, medium: Medium, seed: int = 3) -> None:
    rng = random.Random(seed)
    with world.batch():
        for node_id in NODE_IDS:
            world.add_node(node_id, Point(rng.uniform(0, 300),
                                          rng.uniform(0, 300)))
            for technology in TECHNOLOGIES:
                medium.attach(node_id, technology)


def _listings(medium: Medium) -> dict[tuple[str, str], list[str]]:
    return {(node_id, technology.name):
            medium.neighbors(node_id, technology.name)
            for node_id in NODE_IDS for technology in TECHNOLOGIES}


class TestEscapeHatch:
    def test_vector_sweep_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_SWEEP", raising=False)
        assert vector_sweep_enabled()

    def test_escape_hatch_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_SWEEP", "0")
        assert not vector_sweep_enabled()

    def test_scalar_medium_never_sweeps(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_SWEEP", "0")
        monkeypatch.setenv("REPRO_VECTOR_SWEEP_MIN", "1")
        world, medium = _build({})
        _populate(world, medium)
        assert not medium._vector
        _listings(medium)
        assert medium._sweep_flat == {}

    def test_threshold_gates_small_populations(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_SWEEP", raising=False)
        monkeypatch.delenv("REPRO_VECTOR_SWEEP_MIN", raising=False)
        world, medium = _build({})
        _populate(world, medium)
        assert len(NODE_IDS) < VECTOR_SWEEP_MIN_DEVICES
        _listings(medium)
        # Below the threshold the scalar path serves everything.
        assert medium._sweep_flat == {}

    def test_auto_enables_at_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_SWEEP", raising=False)
        monkeypatch.setenv("REPRO_VECTOR_SWEEP_MIN", str(len(NODE_IDS)))
        world, medium = _build({})
        _populate(world, medium)
        assert medium._vector
        _listings(medium)
        # At or above the threshold every local technology is served by
        # whole-population sweeps, no opt-in required.
        assert set(medium._sweep_flat) == {t.name for t in TECHNOLOGIES}


@contextmanager
def _media_pair():
    """A vectorized and a scalar medium, freshly populated alike.

    Plain environment-variable juggling instead of ``monkeypatch`` —
    hypothesis forbids function-scoped fixtures inside ``@given``.
    """
    saved = {name: os.environ.get(name)
             for name in ("REPRO_VECTOR_SWEEP", "REPRO_VECTOR_SWEEP_MIN")}
    try:
        os.environ["REPRO_VECTOR_SWEEP_MIN"] = "1"
        os.environ.pop("REPRO_VECTOR_SWEEP", None)
        vec_world, vec_medium = _build({})
        assert vec_medium._vector
        os.environ["REPRO_VECTOR_SWEEP"] = "0"
        scal_world, scal_medium = _build({})
        assert not scal_medium._vector
        _populate(vec_world, vec_medium)
        _populate(scal_world, scal_medium)
        yield vec_world, vec_medium, scal_world, scal_medium
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


class TestLockstep:
    """Vectorized and scalar media, identical operation streams."""

    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_arbitrary_interleavings_identical(self, ops):
        with _media_pair() as (vec_world, vec_medium,
                               scal_world, scal_medium):
            self._drive(ops, vec_world, vec_medium, scal_world, scal_medium)

    def _drive(self, ops, vec_world, vec_medium, scal_world, scal_medium):
        assert _listings(vec_medium) == _listings(scal_medium)
        detached: set[tuple[str, str]] = set()
        for op in ops:
            if op[0] == "move":
                _, node_id, x, y = op
                vec_world.move_node(node_id, Point(x, y))
                scal_world.move_node(node_id, Point(x, y))
            elif op[0] == "toggle":
                _, node_id, technology_name = op
                if (node_id, technology_name) in detached:
                    continue
                for medium in (vec_medium, scal_medium):
                    adapter = medium.adapter(node_id, technology_name)
                    adapter.enabled = not adapter.enabled
            else:
                _, node_id, technology_name = op
                if (node_id, technology_name) in detached:
                    continue
                detached.add((node_id, technology_name))
                vec_medium.detach(node_id, technology_name)
                scal_medium.detach(node_id, technology_name)
            vec = {key: listing for key, listing
                   in _listings(vec_medium).items() if key not in detached}
            scal = {key: listing for key, listing
                    in _listings(scal_medium).items() if key not in detached}
            assert vec == scal

    def test_repeat_reads_are_cached_spans(self):
        with _media_pair() as (_, vec_medium, _, scal_medium):
            first = _listings(vec_medium)
            sweeps_done = len(vec_medium._sweep_flat)
            assert sweeps_done  # the vector path actually ran
            assert _listings(vec_medium) == first == _listings(scal_medium)


class TestSweepKernel:
    """sweep_pairs against a brute-force O(n^2) oracle."""

    @settings(max_examples=40, deadline=None)
    @given(points=st.lists(st.tuples(coords, coords),
                           min_size=1, max_size=40),
           radius=st.floats(min_value=0.5, max_value=120.0,
                            allow_nan=False, allow_infinity=False),
           cell_size=st.floats(min_value=1.0, max_value=80.0,
                               allow_nan=False, allow_infinity=False))
    def test_matches_brute_force(self, points, radius, cell_size):
        numpy = pytest.importorskip("numpy")
        xs = numpy.array([x for x, _ in points], dtype=numpy.float64)
        ys = numpy.array([y for _, y in points], dtype=numpy.float64)
        starts, flat = sweep.sweep_pairs(xs, ys, radius, cell_size)
        n = len(points)
        assert len(starts) == n + 1
        r2 = radius * radius
        for i in range(n):
            expected = [j for j in range(n)
                        if j != i
                        and ((xs[j] - xs[i]) ** 2
                             + (ys[j] - ys[i]) ** 2) <= r2]
            assert flat[starts[i]:starts[i + 1]] == expected

    def test_empty_population(self):
        numpy = pytest.importorskip("numpy")
        starts, flat = sweep.sweep_pairs(
            numpy.empty(0), numpy.empty(0), 10.0, 25.0)
        assert starts == [0]
        assert flat == []

    def test_positions_array_order(self):
        env = Environment()
        world = World(env, bounds=BOUNDS)
        world.add_node("b", Point(1.0, 2.0))
        world.add_node("a", Point(3.0, 4.0))
        xs, ys = world.positions_of(["a", "b"])
        assert list(xs) == [3.0, 1.0]
        assert list(ys) == [4.0, 2.0]
