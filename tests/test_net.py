"""Unit tests for framing, connections and the per-device stack."""

from __future__ import annotations

import pytest

from repro.mobility import Point
from repro.net import (
    Connection,
    ConnectionClosedError,
    FrameError,
    ListenerExistsError,
    NetworkStack,
    NoListenerError,
    deserialize,
    frame_size,
    serialize,
)
from repro.radio import BLUETOOTH, WLAN
from repro.radio.medium import NotReachableError
from repro.simenv import SimulationError


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "PS_MSG", "body": "hello", "n": 3, "ok": True}
        assert deserialize(serialize(payload)) == payload

    def test_deterministic_encoding(self):
        assert serialize({"b": 1, "a": 2}) == serialize({"a": 2, "b": 1})

    def test_frame_size_counts_prefix(self):
        assert frame_size({}) == len(serialize({}))
        assert frame_size({}) == 4 + 2  # prefix + "{}"

    def test_unserialisable_payload_rejected(self):
        with pytest.raises(FrameError):
            serialize({"bad": object()})

    def test_short_frame_rejected(self):
        with pytest.raises(FrameError):
            deserialize(b"\x00")

    def test_length_mismatch_rejected(self):
        frame = serialize({"a": 1})
        with pytest.raises(FrameError):
            deserialize(frame[:-1])

    def test_garbage_body_rejected(self):
        with pytest.raises(FrameError):
            deserialize(b"\x00\x00\x00\x03abc")

    def test_nested_structures_survive(self):
        payload = {"list": [1, [2, {"x": None}]], "unicode": "föötball"}
        assert deserialize(serialize(payload)) == payload


def _connect(env, stack_a, stack_b, port="svc", technology=BLUETOOTH):
    """Helper: server listens, client connects; returns both halves."""
    accepted = []
    if not stack_b.listening_on(port):
        stack_b.listen(port, accepted.append)

    def client():
        connection = yield from stack_a.connect("b", port, technology)
        return connection

    process = env.spawn(client())
    env.run(until=env.now + 30.0)
    return process.result, accepted


class TestConnections:
    def test_connect_pays_setup_time(self, env, linked_pair):
        stack_a, stack_b = linked_pair
        stack_b.listen("svc", lambda conn: None)
        start = env.now

        def client():
            connection = yield from stack_a.connect("b", "svc", BLUETOOTH)
            return env.now - start

        process = env.spawn(client())
        env.run(until=30.0)
        assert process.result >= BLUETOOTH.setup_time_s

    def test_send_and_receive(self, env, linked_pair):
        stack_a, stack_b = linked_pair
        local, accepted = _connect(env, stack_a, stack_b)
        local.send({"hello": 1})
        env.run(until=env.now + 5.0)
        server_side = accepted[0]
        assert server_side.pending() == 1

        def reader():
            payload = yield server_side.recv()
            return payload

        process = env.spawn(reader())
        env.run(until=env.now + 1.0)
        assert process.result == {"hello": 1}

    def test_transfer_time_scales_with_size(self, env, linked_pair):
        stack_a, stack_b = linked_pair
        local, _ = _connect(env, stack_a, stack_b)
        small = local.send({"x": "a"})
        large = local.send({"x": "a" * 100_000})
        assert large > small

    def test_send_on_closed_raises(self, env, linked_pair):
        stack_a, stack_b = linked_pair
        local, _ = _connect(env, stack_a, stack_b)
        local.close()
        with pytest.raises(ConnectionClosedError):
            local.send({})

    def test_close_propagates_to_peer(self, env, linked_pair):
        stack_a, stack_b = linked_pair
        local, accepted = _connect(env, stack_a, stack_b)
        local.close()
        assert accepted[0].closed

    def test_link_break_detected_at_send(self, env, world, linked_pair):
        stack_a, stack_b = linked_pair
        local, _ = _connect(env, stack_a, stack_b)
        world.move_node("b", Point(150.0, 150.0))  # out of both ranges
        with pytest.raises(NotReachableError):
            local.send({"x": 1})
        assert local.closed

    def test_pending_recv_resumes_with_none_on_close(self, env, linked_pair):
        stack_a, stack_b = linked_pair
        local, accepted = _connect(env, stack_a, stack_b)

        def reader():
            payload = yield accepted[0].recv()
            return payload

        process = env.spawn(reader())
        local.close()
        env.run(until=env.now + 1.0)
        assert process.result is None

    def test_migrate_switches_technology_both_halves(self, env, linked_pair):
        stack_a, stack_b = linked_pair
        local, accepted = _connect(env, stack_a, stack_b)
        local.migrate(WLAN)
        assert local.technology is WLAN
        assert accepted[0].technology is WLAN

    def test_messages_account_traffic(self, env, medium, linked_pair):
        stack_a, stack_b = linked_pair
        local, _ = _connect(env, stack_a, stack_b)
        local.send({"payload": "x" * 100})
        adapter = medium.adapter("a", "bluetooth")
        assert adapter.bytes_sent > 100

    def test_delivery_is_fifo_regardless_of_size(self, env, linked_pair):
        """A big frame sent first must arrive before a small frame sent
        second (ordered delivery, the L2CAP contract)."""
        stack_a, stack_b = linked_pair
        local, accepted = _connect(env, stack_a, stack_b)
        local.send({"tag": "big", "pad": "x" * 50_000})
        local.send({"tag": "small"})
        env.run(until=env.now + 10.0)
        server_side = accepted[0]

        def reader():
            first = yield server_side.recv()
            second = yield server_side.recv()
            return first["tag"], second["tag"]

        process = env.spawn(reader())
        env.run(until=env.now + 1.0)
        assert process.result == ("big", "small")

    def test_back_to_back_sends_serialise_on_the_link(self, env,
                                                      linked_pair):
        stack_a, stack_b = linked_pair
        local, _ = _connect(env, stack_a, stack_b)
        first = local.send({"pad": "x" * 10_000})
        second = local.send({"pad": "y" * 10_000})
        # The second frame queues behind the first: its completion time
        # (relative to now) is at least twice the first's.
        assert second >= first * 2 * 0.99

    def test_repr(self, env, linked_pair):
        stack_a, stack_b = linked_pair
        local, _ = _connect(env, stack_a, stack_b)
        assert "a->b" in repr(local)


class TestStack:
    def test_connect_without_listener_refused(self, env, linked_pair):
        stack_a, _ = linked_pair

        def client():
            yield from stack_a.connect("b", "nothing-here", BLUETOOTH)

        process = env.spawn(client())
        with pytest.raises(SimulationError) as excinfo:
            env.run(until=30.0)
        assert isinstance(excinfo.value.__cause__, NoListenerError)

    def test_connect_unreachable_peer_fails_fast(self, env, world, medium,
                                                 registry):
        world.add_node("a", Point(0, 0))
        world.add_node("z", Point(190, 190))
        medium.attach("a", BLUETOOTH)
        medium.attach("z", BLUETOOTH)
        stack_a = NetworkStack(env, medium, "a", registry)
        NetworkStack(env, medium, "z", registry)

        def client():
            try:
                yield from stack_a.connect("z", "svc", BLUETOOTH)
            except NotReachableError:
                return "unreachable"

        process = env.spawn(client())
        env.run(until=10.0)
        assert process.result == "unreachable"

    def test_peer_moving_away_during_setup_fails(self, env, world,
                                                 linked_pair):
        stack_a, stack_b = linked_pair
        stack_b.listen("svc", lambda conn: None)

        def client():
            try:
                yield from stack_a.connect("b", "svc", BLUETOOTH)
            except NotReachableError:
                return "lost during setup"

        process = env.spawn(client())
        # Teleport b away while the setup delay is pending.
        env.call_in(BLUETOOTH.setup_time_s / 2.0,
                    world.move_node, "b", Point(150.0, 150.0))
        env.run(until=30.0)
        assert process.result == "lost during setup"

    def test_duplicate_listener_rejected(self, linked_pair):
        _, stack_b = linked_pair
        stack_b.listen("svc", lambda conn: None)
        with pytest.raises(ListenerExistsError):
            stack_b.listen("svc", lambda conn: None)

    def test_unlisten_then_relisten(self, linked_pair):
        _, stack_b = linked_pair
        stack_b.listen("svc", lambda conn: None)
        stack_b.unlisten("svc")
        assert not stack_b.listening_on("svc")
        stack_b.listen("svc", lambda conn: None)

    def test_registry_rejects_duplicate_device(self, env, medium, registry,
                                               world):
        world.add_node("a", Point(0, 0))
        NetworkStack(env, medium, "a", registry)
        with pytest.raises(ValueError):
            NetworkStack(env, medium, "a", registry)

    def test_registry_remove(self, env, medium, registry, world):
        world.add_node("a", Point(0, 0))
        NetworkStack(env, medium, "a", registry)
        registry.remove("a")
        assert registry.stack_of("a") is None

    def test_registry_device_ids_sorted(self, env, medium, registry, world):
        for name in ("cara", "abe", "bo"):
            world.add_node(name, Point(0, 0))
            NetworkStack(env, medium, name, registry)
        assert registry.device_ids() == ["abe", "bo", "cara"]

    def test_registry_close_all(self, env, linked_pair):
        stack_a, stack_b = linked_pair
        client, (server,) = _connect(env, stack_a, stack_b)
        registry = stack_a.registry
        registry.close_all()
        assert registry.device_ids() == []
        assert client.closed and server.closed
        assert registry.stack_of("a") is None


class TestTransportContract:
    """The sim stack satisfies the structural transport protocols."""

    def test_stack_is_a_transport(self, linked_pair):
        from repro.net.transport import Transport
        stack_a, _ = linked_pair
        assert isinstance(stack_a, Transport)

    def test_connection_is_a_transport_connection(self, env, linked_pair):
        from repro.net.transport import TransportConnection
        stack_a, stack_b = linked_pair
        client, (server,) = _connect(env, stack_a, stack_b)
        assert isinstance(client, TransportConnection)
        assert isinstance(server, TransportConnection)
