"""Unit tests for geometry, mobility models and the world."""

from __future__ import annotations


import pytest

from repro.mobility import (
    BusRoute,
    LinearCrossing,
    PathFollower,
    Point,
    RandomWalk,
    RandomWaypoint,
    Rect,
    Stationary,
    World,
    distance,
)


class TestGeometry:
    def test_distance(self):
        assert distance(Point(0, 0), Point(3, 4)) == 5.0

    def test_moved_towards_partial(self):
        moved = Point(0, 0).moved_towards(Point(10, 0), 4.0)
        assert moved == Point(4.0, 0.0)

    def test_moved_towards_never_overshoots(self):
        moved = Point(0, 0).moved_towards(Point(1, 0), 5.0)
        assert moved == Point(1, 0)

    def test_moved_towards_self_is_stable(self):
        point = Point(2, 2)
        assert point.moved_towards(point, 1.0) == point

    def test_offset(self):
        assert Point(1, 1).offset(2, -1) == Point(3, 0)

    def test_rect_contains_and_clamp(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains(Point(5, 5))
        assert not rect.contains(Point(11, 5))
        assert rect.clamp(Point(-3, 12)) == Point(0, 10)

    def test_rect_dimensions(self):
        rect = Rect(1, 2, 4, 8)
        assert rect.width == 3
        assert rect.height == 6

    def test_degenerate_rect_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 10)

    def test_random_point_inside(self, env):
        rect = Rect(10, 20, 30, 40)
        rng = env.random.stream("geom")
        for _ in range(50):
            assert rect.contains(rect.random_point(rng))


class TestModels:
    def test_stationary_never_moves(self):
        model = Stationary()
        assert model.step(Point(3, 3), 100.0) == Point(3, 3)

    def test_random_walk_moves_at_speed(self, env):
        bounds = Rect(0, 0, 1000, 1000)
        model = RandomWalk(bounds, speed=2.0,
                           rng=env.random.stream("walk"),
                           turn_interval=1e9)
        start = Point(500, 500)
        end = model.step(start, 3.0)
        assert distance(start, end) == pytest.approx(6.0, rel=1e-6)

    def test_random_walk_stays_in_bounds(self, env):
        bounds = Rect(0, 0, 20, 20)
        model = RandomWalk(bounds, speed=5.0, rng=env.random.stream("walk"))
        position = Point(10, 10)
        for _ in range(200):
            position = model.step(position, 1.0)
            assert bounds.contains(position)

    def test_random_walk_negative_speed_rejected(self, env):
        with pytest.raises(ValueError):
            RandomWalk(Rect(0, 0, 1, 1), -1.0, env.random.stream("walk"))

    def test_random_waypoint_reaches_and_pauses(self, env):
        bounds = Rect(0, 0, 50, 50)
        model = RandomWaypoint(bounds, env.random.stream("rwp"),
                               min_speed=1.0, max_speed=1.0, max_pause=5.0)
        position = Point(25, 25)
        positions = []
        for _ in range(500):
            position = model.step(position, 1.0)
            positions.append(position)
        # The node must have moved and must have paused at least once
        # (consecutive identical positions while pausing).
        assert len({(p.x, p.y) for p in positions}) > 5
        assert any(a == b for a, b in zip(positions, positions[1:],
                                          strict=False))

    def test_random_waypoint_invalid_speeds(self, env):
        with pytest.raises(ValueError):
            RandomWaypoint(Rect(0, 0, 1, 1), env.random.stream("rwp"),
                           min_speed=2.0, max_speed=1.0)

    def test_path_follower_walks_the_polyline(self):
        path = PathFollower([Point(0, 0), Point(10, 0), Point(10, 10)],
                            speed=5.0)
        position = Point(0, 0)
        position = path.step(position, 1.0)
        assert position == Point(5, 0)
        position = path.step(position, 2.0)  # 5 to corner, 5 up
        assert position == Point(10, 5)
        position = path.step(position, 10.0)
        assert position == Point(10, 10)
        assert path.finished

    def test_path_follower_loop_restarts(self):
        path = PathFollower([Point(0, 0), Point(4, 0)], speed=2.0, loop=True)
        position = Point(0, 0)
        for _ in range(10):
            position = path.step(position, 1.0)
        assert not path.finished

    def test_path_follower_needs_two_points(self):
        with pytest.raises(ValueError):
            PathFollower([Point(0, 0)], speed=1.0)

    def test_bus_route_is_looping(self):
        bus = BusRoute([Point(0, 0), Point(100, 0), Point(100, 100)])
        assert not bus.finished
        position = Point(0, 0)
        for _ in range(1000):
            position = bus.step(position, 1.0)
        assert not bus.finished  # loops forever

    def test_linear_crossing_completes_once(self):
        crossing = LinearCrossing(Point(0, 0), Point(10, 0), speed=2.0)
        position = Point(0, 0)
        position = crossing.step(position, 3.0)
        assert position == Point(6, 0)
        position = crossing.step(position, 5.0)
        assert position == Point(10, 0)
        assert crossing.finished
        assert crossing.step(position, 5.0) == Point(10, 0)

    def test_linear_crossing_speed_positive(self):
        with pytest.raises(ValueError):
            LinearCrossing(Point(0, 0), Point(1, 0), speed=0.0)


class TestWorld:
    def test_add_and_query_nodes(self, env, world):
        world.add_node("a", Point(0, 0))
        world.add_node("b", Point(3, 4))
        assert world.distance_between("a", "b") == 5.0
        assert len(world) == 2
        assert "a" in world

    def test_duplicate_node_rejected(self, world):
        world.add_node("a", Point(0, 0))
        with pytest.raises(ValueError):
            world.add_node("a", Point(1, 1))

    def test_remove_node(self, world):
        world.add_node("a", Point(0, 0))
        world.remove_node("a")
        assert "a" not in world
        with pytest.raises(KeyError):
            world.remove_node("a")

    def test_nodes_within_radius(self, world):
        world.add_node("center", Point(100, 100))
        world.add_node("near", Point(103, 100))
        world.add_node("far", Point(150, 100))
        found = world.nodes_within("center", 10.0)
        assert [node.node_id for node in found] == ["near"]

    def test_out_of_bounds_placement_clamped(self, world):
        node = world.add_node("a", Point(-50, 500))
        assert world.bounds.contains(node.position)

    def test_movement_advances_with_time(self, env, world):
        world.add_node("walker", Point(0, 100),
                       LinearCrossing(Point(0, 100), Point(100, 100), 2.0))
        env.run(until=10.0)
        walker = world.node("walker")
        assert walker.position.x == pytest.approx(20.0, abs=1e-6)

    def test_movement_listener_fires(self, env, world):
        calls = []
        world.on_movement(lambda: calls.append(env.now))
        world.add_node("walker", Point(0, 0),
                       LinearCrossing(Point(0, 0), Point(10, 0), 1.0))
        env.run(until=2.0)
        assert calls  # at least the add + ticks

    def test_stationary_world_stops_notifying(self, env, world):
        world.add_node("rock", Point(5, 5))
        calls = []
        world.on_movement(lambda: calls.append(env.now))
        env.run(until=5.0)
        assert calls == []  # no movement -> no notifications

    def test_move_node_teleports(self, env, world):
        world.add_node("a", Point(0, 0))
        world.move_node("a", Point(50, 50))
        assert world.node("a").position == Point(50, 50)

    def test_stop_halts_ticks(self, env, world):
        world.add_node("walker", Point(0, 0),
                       LinearCrossing(Point(0, 0), Point(100, 0), 1.0))
        env.run(until=2.0)
        world.stop()
        x_at_stop = world.node("walker").position.x
        env.run(until=50.0)
        assert world.node("walker").position.x == x_at_stop

    def test_node_repr(self, world):
        node = world.add_node("a", Point(1, 2))
        assert "a" in repr(node)
