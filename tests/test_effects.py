"""Fixpoint unit tests for the per-function effect inference."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import analyze_effects, parse_module
from repro.analysis.effects import (
    AMBIENT_RANDOM,
    BLOCKING_IO,
    UNORDERED_RETURN,
    WALL_CLOCK,
)


def effects_for(tmp_path: Path, files: dict[str, str]):
    modules = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        modules.append(parse_module(path, root=tmp_path))
    analysis = analyze_effects(modules)
    return analysis


def fid(analysis, suffix: str) -> str:
    matches = [f for f in analysis.graph.functions if f.endswith(suffix)]
    assert len(matches) == 1, (suffix, sorted(analysis.graph.functions))
    return matches[0]


def test_direct_effects_are_seeded(tmp_path: Path) -> None:
    analysis = effects_for(tmp_path, {"mod.py": """
        import time
        import uuid


        def stamp():
            return time.time()


        def token():
            return uuid.uuid4()


        def wait():
            time.sleep(1)
    """})
    assert WALL_CLOCK in analysis.effects_of(fid(analysis, "::stamp"))
    assert AMBIENT_RANDOM in analysis.effects_of(fid(analysis, "::token"))
    assert BLOCKING_IO in analysis.effects_of(fid(analysis, "::wait"))


def test_effects_propagate_to_callers(tmp_path: Path) -> None:
    analysis = effects_for(tmp_path, {"mod.py": """
        import time


        def deep():
            return time.time()


        def middle():
            return deep()


        def top():
            return middle()
    """})
    top = fid(analysis, "::top")
    assert WALL_CLOCK in analysis.effects_of(top)
    origin = analysis.origins_of(top, WALL_CLOCK)[0]
    assert origin.source == "time.time"
    chain = analysis.chain(top, origin)
    hops = [callee for callee, _line in chain]
    assert hops == [fid(analysis, "::middle"), fid(analysis, "::deep")]


def test_fixpoint_converges_on_cyclic_graph(tmp_path: Path) -> None:
    # ping -> pong -> ping, with the clock read in the cycle: the
    # worklist must terminate and both members carry the effect.
    analysis = effects_for(tmp_path, {"mod.py": """
        import time


        def ping(n):
            if n:
                return pong(n - 1)
            return time.time()


        def pong(n):
            return ping(n)
    """})
    ping = fid(analysis, "::ping")
    pong = fid(analysis, "::pong")
    assert WALL_CLOCK in analysis.effects_of(ping)
    assert WALL_CLOCK in analysis.effects_of(pong)
    origin = analysis.origins_of(pong, WALL_CLOCK)[0]
    # Chain extraction must not loop forever on the cycle either.
    assert analysis.chain(pong, origin)


def test_unordered_return_needs_return_position(tmp_path: Path) -> None:
    analysis = effects_for(tmp_path, {"mod.py": """
        def _ids():
            return {1, 2, 3}


        def leak():
            return _ids()


        def two_step():
            out = _ids()
            return out


        def harmless():
            out = _ids()
            return len(out)


        def laundered():
            return sorted(_ids())
    """})
    assert UNORDERED_RETURN in analysis.effects_of(fid(analysis, "::_ids"))
    assert UNORDERED_RETURN in analysis.effects_of(fid(analysis, "::leak"))
    assert UNORDERED_RETURN in analysis.effects_of(fid(analysis, "::two_step"))
    # Calling an order-unstable helper is fine while the result never
    # escapes, and sorted(...) launders the taint entirely.
    assert UNORDERED_RETURN not in \
        analysis.effects_of(fid(analysis, "::harmless"))
    assert UNORDERED_RETURN not in \
        analysis.effects_of(fid(analysis, "::laundered"))


def test_parameter_mutation_propagates_through_wrappers(
        tmp_path: Path) -> None:
    analysis = effects_for(tmp_path, {"mod.py": """
        def poke(obj):
            obj.count = 1


        def wrapper(state):
            poke(state)


        def reader(state):
            return state.count
    """})
    assert "obj" in analysis.mutated_params(fid(analysis, "::poke"))
    assert "state" in analysis.mutated_params(fid(analysis, "::wrapper"))
    assert analysis.mutated_params(fid(analysis, "::reader")) == {}


def test_mutator_method_counts_as_parameter_mutation(tmp_path: Path) -> None:
    analysis = effects_for(tmp_path, {"mod.py": """
        def push(queue, item):
            queue.append(item)
    """})
    assert "queue" in analysis.mutated_params(fid(analysis, "::push"))
    assert "item" not in analysis.mutated_params(fid(analysis, "::push"))
