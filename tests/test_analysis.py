"""Fixture-driven self-tests for the simulation-safety analyzer.

Every rule has at least one firing fixture and one passing fixture
under ``tests/analysis_fixtures/``; the live-tree test then pins the
analyzer's verdict on ``src/repro`` itself to *clean with zero
suppressions*, so a regression in either the code or the rules shows
up as a test failure, not just a CI lint failure.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_tree, rule_codes
from repro.analysis.runner import SCHEMA

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"
SRC_TREE = REPO_ROOT / "src" / "repro"
CHECK_CLI = REPO_ROOT / "scripts" / "check.py"


def analyze_fixture(*relative: str):
    paths = [FIXTURES / part for part in relative]
    return analyze_paths(paths, root=FIXTURES)


def fired_codes(report) -> set[str]:
    return {finding.rule for finding in report.findings}


# -- one firing and one passing fixture per rule ----------------------------

RULE_FIXTURES = [
    ("SIM001", "simenv/bad_sim001.py", "simenv/good_sim001.py"),
    ("SIM002", "simenv/bad_sim002.py", "simenv/good_sim002.py"),
    ("SIM003", "simenv/bad_sim003.py", "simenv/good_sim003.py"),
    ("SIM004", "simenv/bad_sim004.py", "simenv/good_sim004.py"),
    ("SIM005", "sim005_bad/simenv/events.py", "sim005_ok/simenv/events.py"),
]


@pytest.mark.parametrize("code,bad,good", RULE_FIXTURES)
def test_rule_fires_on_bad_fixture(code: str, bad: str, good: str) -> None:
    report = analyze_fixture(bad)
    assert code in fired_codes(report), \
        f"{code} should fire on {bad}: {report.findings}"


@pytest.mark.parametrize("code,bad,good", RULE_FIXTURES)
def test_rule_passes_on_good_fixture(code: str, bad: str, good: str) -> None:
    report = analyze_fixture(good)
    assert code not in fired_codes(report), \
        f"{code} must stay quiet on {good}: {report.findings}"


def test_sim001_fires_once_per_wall_clock_read() -> None:
    report = analyze_fixture("simenv/bad_sim001.py")
    sim001 = [f for f in report.findings if f.rule == "SIM001"]
    assert len(sim001) == 2  # time.perf_counter and datetime.now
    assert all(f.path == "simenv/bad_sim001.py" for f in sim001)
    assert all(f.line > 0 for f in sim001)


def test_sim001_scoped_to_sim_path_packages() -> None:
    report = analyze_fixture("eval/good_sim001_scope.py")
    assert "SIM001" not in fired_codes(report)


def test_sim002_applies_everywhere() -> None:
    # Same source as bad_sim002 but under eval/: SIM002 still fires.
    report = analyze_fixture("eval/good_sim001_scope.py")
    assert "SIM002" not in fired_codes(report)
    report = analyze_fixture("simenv/bad_sim002.py")
    messages = [f.message for f in report.findings if f.rule == "SIM002"]
    assert any("unseeded" in message for message in messages)
    assert any("process-global" in message for message in messages)


def test_sim003_only_flags_generator_bodies() -> None:
    report = analyze_fixture("simenv/good_sim003.py")
    assert "SIM003" not in fired_codes(report)
    report = analyze_fixture("simenv/bad_sim003.py")
    sim003 = [f for f in report.findings if f.rule == "SIM003"]
    # time.sleep, socket.create_connection, open()
    assert len(sim003) == 3


def test_sim005_fires_once_per_hot_loop_allocation() -> None:
    report = analyze_fixture("sim005_bad/simenv/events.py")
    sim005 = [f for f in report.findings if f.rule == "SIM005"]
    # json.dumps, dict(event.state), copy.deepcopy — but not the
    # module-level json.loads setup.
    assert len(sim005) == 3


def test_sim005_scoped_to_hot_loop_filenames() -> None:
    # The same serialization calls in a sim-path module that is *not*
    # on the hot loop (messages.py owns encoding) stay unflagged.
    report = analyze_fixture("sim005_ok/simenv/messages.py")
    assert "SIM005" not in fired_codes(report)


# -- interprocedural rules (DET001/DET002/SHARD001/SHARD002) ----------------

def project_fixture(name: str):
    """Analyze a whole fixture directory (the call-graph rules need
    every module of the little project, not one file)."""
    paths = sorted((FIXTURES / name).rglob("*.py"))
    return analyze_paths(paths, root=FIXTURES)


PROJECT_RULE_FIXTURES = [
    ("DET001", "det001_bad", "det001_ok"),
    ("DET002", "det002_bad", "det002_ok"),
    ("SHARD001", "shard001_bad", "shard001_ok"),
    ("SHARD002", "shard002_bad", "shard002_ok"),
]


@pytest.mark.parametrize("code,bad,good", PROJECT_RULE_FIXTURES)
def test_project_rule_fires_on_bad_fixture(code, bad, good) -> None:
    report = project_fixture(bad)
    assert code in fired_codes(report), \
        f"{code} should fire on {bad}: {report.findings}"


@pytest.mark.parametrize("code,bad,good", PROJECT_RULE_FIXTURES)
def test_project_rule_passes_on_good_fixture(code, bad, good) -> None:
    report = project_fixture(good)
    assert fired_codes(report) == set(), \
        f"{good} must be fully clean: {report.findings}"


def test_det001_catches_what_file_local_rules_provably_miss() -> None:
    # The tentpole acceptance case: the wall-clock read and the entropy
    # draw both live in helpers outside the sim path, so SIM001/SIM002
    # stay silent — only the interprocedural rule sees the chain.
    report = project_fixture("det001_bad")
    assert "SIM001" not in fired_codes(report)
    assert "SIM002" not in fired_codes(report)
    det = [f for f in report.findings if f.rule == "DET001"]
    assert len(det) == 2  # one wall-clock chain, one uuid4 chain
    assert all(f.path == "det001_bad/simenv/scheduler.py" for f in det)
    messages = " ".join(f.message for f in det)
    assert "now_seconds -> time.time" in messages
    assert "fresh_token -> uuid.uuid4" in messages
    # The witness chain names the module holding the direct site.
    assert "det001_bad/util/clock.py" in messages


def test_det002_taints_through_unordered_return_helpers() -> None:
    report = project_fixture("det002_bad")
    det = [f for f in report.findings if f.rule == "DET002"]
    messages = " ".join(f.message for f in det)
    assert "ShardExchange(...) payload" in messages
    assert "make_request(...) wire payload" in messages


def test_shard001_reports_direct_mutator_and_helper_writes() -> None:
    report = project_fixture("shard001_bad")
    messages = [f.message for f in report.findings if f.rule == "SHARD001"]
    assert len(messages) == 3
    assert any("assigns to ghost-owned state" in m for m in messages)
    assert any(".update(...)" in m for m in messages)
    assert any("passes ghost-owned state to _touch" in m for m in messages)


def test_shard002_allows_process_time_only_in_runner() -> None:
    report = project_fixture("shard002_bad")
    messages = [f.message for f in report.findings if f.rule == "SHARD002"]
    assert any("wall-clock read time.time" in m for m in messages)
    assert any("outside the coordinator" in m for m in messages)
    # The coordinator itself is the sanctioned process_time user.
    assert project_fixture("shard002_ok").ok


# -- suppressions -----------------------------------------------------------

def test_file_scoped_suppression_moves_finding_aside() -> None:
    report = analyze_fixture("simenv/suppressed_sim001.py")
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["SIM001"]
    assert len(report.suppressions) == 1
    suppression = report.suppressions[0]
    assert suppression.rule == "SIM001"
    assert "false-positive" in suppression.reason


def test_stale_suppression_is_itself_a_finding() -> None:
    report = analyze_fixture("simenv/stale_allow.py")
    assert not report.ok
    assert fired_codes(report) == {"SUP001"}
    assert "suppresses nothing" in report.findings[0].message


def test_function_scoped_suppression_covers_only_its_function() -> None:
    report = analyze_fixture("simenv/func_scoped_allow.py")
    # calibrate()'s read is waived; schedule()'s identical read is not.
    assert [f.rule for f in report.findings] == ["SIM001"]
    assert [f.rule for f in report.suppressed] == ["SIM001"]
    suppression = report.suppressions[0]
    assert suppression.scope == "calibrate"
    assert report.absorbed[suppression] == 1


def test_stale_function_scoped_suppression_fires_sup001() -> None:
    # The file has a real SIM001 finding, but outside the waived span:
    # the function-scoped allowance still absorbed nothing.
    report = analyze_fixture("simenv/stale_func_allow.py")
    assert fired_codes(report) == {"SIM001", "SUP001"}
    sup = [f for f in report.findings if f.rule == "SUP001"]
    assert "(scoped to quiet)" in sup[0].message


def test_suppression_reports_absorbed_counts() -> None:
    report = analyze_fixture("simenv/suppressed_sim001.py")
    payload = report.to_json()
    assert payload["suppressions"][0]["absorbed"] == 1
    assert payload["suppressions"][0]["scope"] == "file"
    assert "absorbed 1 finding(s)" in report.render_human()


# -- PROTO001 ---------------------------------------------------------------

def proto_project(name: str):
    root = FIXTURES / name / "community"
    return analyze_paths(sorted(root.glob("*.py")), root=FIXTURES)


def test_proto001_quiet_on_consistent_triangle() -> None:
    report = proto_project("proto_ok")
    assert "PROTO001" not in fired_codes(report), report.findings


def test_proto001_reports_every_broken_corner() -> None:
    report = proto_project("proto_bad")
    messages = [f.message for f in report.findings if f.rule == "PROTO001"]
    assert any("PS_ORPHAN" in m and "no server handler" in m
               for m in messages)
    assert any("PS_ORPHAN" in m and "no client" in m for m in messages)
    assert any("PS_UNSENT" in m and "no client" in m for m in messages)
    assert any("PS_GHOST" in m and "do not declare" in m for m in messages)
    assert any("PS_ROGUE" in m and "do not declare" in m for m in messages)


def test_proto001_skips_partial_module_sets() -> None:
    # Changed-file mode without protocol.py cannot see the triangle.
    report = analyze_fixture("proto_bad/community/client.py")
    assert "PROTO001" not in fired_codes(report)


def test_proto001_skips_incomplete_package() -> None:
    # protocol.py + server.py alone are not enough either: sibling
    # modules (filetransfer, discovery) declare and encode operations,
    # so judging the triangle from a package subset would report false
    # positives.  Regression: the real tree's protocol + server + client
    # subset used to yield 12 bogus "no server handler" findings.
    community = REPO_ROOT / "src" / "repro" / "community"
    subset = [community / "protocol.py", community / "server.py",
              community / "client.py"]
    report = analyze_paths(subset, root=REPO_ROOT)
    assert "PROTO001" not in fired_codes(report), report.findings


# -- PROTO002 ---------------------------------------------------------------

def test_proto002_quiet_when_every_op_is_exercised() -> None:
    report = proto_project("proto002_ok")
    assert "PROTO002" not in fired_codes(report), report.findings


def test_proto002_fires_on_unexercised_operation() -> None:
    report = proto_project("proto002_bad")
    messages = [f.message for f in report.findings if f.rule == "PROTO002"]
    assert any("PS_UNCOVERED" in m and "conformance exchange" in m
               for m in messages)
    assert not any("PS_PING" in m for m in messages)


def test_proto002_skips_projects_without_exchange_scripts() -> None:
    # The PROTO001 fixture has no exchanges.py: a project without a
    # conformance script module is out of PROTO002's jurisdiction
    # (and changed-file runs must not fail for the same reason).
    report = proto_project("proto_ok")
    assert "PROTO002" not in fired_codes(report), report.findings


def test_proto002_skips_partial_module_sets() -> None:
    report = analyze_fixture("proto002_bad/community/exchanges.py")
    assert "PROTO002" not in fired_codes(report)


def test_proto002_live_tree_covers_every_operation() -> None:
    # The real exchanges module must exercise the full vocabulary,
    # including ops registered outside protocol.py (PS_GETFILECHUNK).
    from repro.community import protocol

    exchanges = (REPO_ROOT / "src" / "repro" / "community" /
                 "exchanges.py").read_text()
    for op in sorted(protocol.OPERATIONS):
        assert op in exchanges, f"{op} missing from conformance exchanges"


# -- PARSE001 ---------------------------------------------------------------

def test_parse_failure_quotes_the_offending_line() -> None:
    report = analyze_fixture("broken/unparsable.py")
    assert fired_codes(report) == {"PARSE001"}
    finding = report.findings[0]
    assert finding.path == "broken/unparsable.py"
    assert "def broken(:" in finding.message  # the offending source line
    assert finding.line == 4


# -- report plumbing --------------------------------------------------------

def test_json_report_shape() -> None:
    report = analyze_fixture("simenv/bad_sim001.py", "simenv/suppressed_sim001.py")
    payload = report.to_json()
    assert payload["schema"] == SCHEMA
    assert payload["files_scanned"] == 2
    assert payload["ok"] is False
    assert payload["counts"]["SIM001"] == 2
    assert len(payload["suppressed"]) == 1
    assert len(payload["suppressions"]) == 1
    round_trip = json.loads(json.dumps(payload))
    assert round_trip == payload


def test_findings_are_sorted_and_deterministic() -> None:
    once = analyze_fixture("simenv/bad_sim001.py", "simenv/bad_sim003.py")
    twice = analyze_fixture("simenv/bad_sim003.py", "simenv/bad_sim001.py")
    assert [f.render() for f in once.findings] == \
        [f.render() for f in twice.findings]
    assert once.findings == sorted(once.findings)


def test_rule_registry_is_complete() -> None:
    assert set(rule_codes()) >= {"SIM001", "SIM002", "SIM003", "SIM004",
                                 "PROTO001", "PROTO002", "SUP001",
                                 "PARSE001", "DET001", "DET002",
                                 "SHARD001", "SHARD002"}


def test_partial_flag_distinguishes_file_lists_from_full_tree() -> None:
    partial = analyze_fixture("simenv/good_sim001.py")
    assert partial.partial is True
    assert partial.to_json()["partial"] is True
    assert "partial run" in partial.render_human()
    full = analyze_tree(SRC_TREE)
    assert full.partial is False
    assert "partial run" not in full.render_human()


def test_sarif_rendering() -> None:
    from repro.analysis.sarif import to_sarif

    report = analyze_fixture("simenv/bad_sim001.py")
    sarif = to_sarif(report)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analysis"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"SIM001", "DET001", "SHARD001"} <= rule_ids
    results = run["results"]
    assert len(results) == len(report.findings)
    first = results[0]
    assert first["ruleId"] == "SIM001"
    region = first["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == report.findings[0].line
    assert region["startColumn"] == report.findings[0].col + 1
    assert run["properties"]["partial"] is True


# -- the live tree ----------------------------------------------------------

def test_live_tree_is_clean() -> None:
    report = analyze_tree(SRC_TREE)
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)
    assert report.suppressions == [], \
        "suppressions must stay within the committed budget (0)"
    assert len(report.files) > 90  # the whole package, not a subset


def test_full_tree_fixpoint_is_fast_enough() -> None:
    # The acceptance budget for the interprocedural pass: the whole
    # tree — call graph, effect fixpoint, every rule — in under 10 s.
    import time as _time

    started = _time.perf_counter()
    analyze_tree(SRC_TREE)
    assert _time.perf_counter() - started < 10.0


# -- the CLI ----------------------------------------------------------------

def run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECK_CLI), *argv],
        capture_output=True, text=True, cwd=str(REPO_ROOT))


def test_cli_clean_tree_exits_zero(tmp_path: Path) -> None:
    artifact = tmp_path / "report.json"
    result = run_cli("--output", str(artifact))
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(artifact.read_text())
    assert payload["schema"] == SCHEMA
    assert payload["ok"] is True


def test_cli_bad_fixture_exits_nonzero() -> None:
    result = run_cli(str(FIXTURES / "simenv" / "bad_sim001.py"))
    assert result.returncode == 1
    assert "SIM001" in result.stdout


def test_cli_suppression_budget_gates(tmp_path: Path) -> None:
    fixture = str(FIXTURES / "simenv" / "suppressed_sim001.py")
    strict = run_cli(fixture, "--max-suppressions", "0")
    assert strict.returncode == 1
    assert "suppression budget exceeded" in strict.stdout
    relaxed = run_cli(fixture, "--max-suppressions", "1")
    assert relaxed.returncode == 0, relaxed.stdout


def test_cli_json_mode() -> None:
    result = run_cli(str(FIXTURES / "simenv" / "bad_sim002.py"), "--json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["counts"]["SIM002"] >= 2


def test_cli_sarif_artifact(tmp_path: Path) -> None:
    artifact = tmp_path / "report.sarif"
    result = run_cli(str(FIXTURES / "simenv" / "bad_sim001.py"),
                     "--sarif", str(artifact))
    assert result.returncode == 1
    sarif = json.loads(artifact.read_text())
    assert sarif["version"] == "2.1.0"
    assert {r["ruleId"] for r in sarif["runs"][0]["results"]} == {"SIM001"}


def test_cli_partial_run_warns_on_stderr() -> None:
    result = run_cli("--partial",
                     str(FIXTURES / "simenv" / "good_sim001.py"))
    assert result.returncode == 0
    assert "partial run" in result.stderr
    assert "not authoritative" in result.stderr


def test_cli_partial_without_paths_is_a_usage_error() -> None:
    result = run_cli("--partial")
    assert result.returncode == 2
    assert "explicit file list" in result.stderr


def test_cli_full_tree_is_not_partial(tmp_path: Path) -> None:
    artifact = tmp_path / "report.json"
    result = run_cli("--output", str(artifact))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "partial run" not in result.stderr
    assert json.loads(artifact.read_text())["partial"] is False
