"""Fixture-driven self-tests for the simulation-safety analyzer.

Every rule has at least one firing fixture and one passing fixture
under ``tests/analysis_fixtures/``; the live-tree test then pins the
analyzer's verdict on ``src/repro`` itself to *clean with zero
suppressions*, so a regression in either the code or the rules shows
up as a test failure, not just a CI lint failure.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_tree, rule_codes
from repro.analysis.runner import SCHEMA

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"
SRC_TREE = REPO_ROOT / "src" / "repro"
CHECK_CLI = REPO_ROOT / "scripts" / "check.py"


def analyze_fixture(*relative: str):
    paths = [FIXTURES / part for part in relative]
    return analyze_paths(paths, root=FIXTURES)


def fired_codes(report) -> set[str]:
    return {finding.rule for finding in report.findings}


# -- one firing and one passing fixture per rule ----------------------------

RULE_FIXTURES = [
    ("SIM001", "simenv/bad_sim001.py", "simenv/good_sim001.py"),
    ("SIM002", "simenv/bad_sim002.py", "simenv/good_sim002.py"),
    ("SIM003", "simenv/bad_sim003.py", "simenv/good_sim003.py"),
    ("SIM004", "simenv/bad_sim004.py", "simenv/good_sim004.py"),
    ("SIM005", "sim005_bad/simenv/events.py", "sim005_ok/simenv/events.py"),
]


@pytest.mark.parametrize("code,bad,good", RULE_FIXTURES)
def test_rule_fires_on_bad_fixture(code: str, bad: str, good: str) -> None:
    report = analyze_fixture(bad)
    assert code in fired_codes(report), \
        f"{code} should fire on {bad}: {report.findings}"


@pytest.mark.parametrize("code,bad,good", RULE_FIXTURES)
def test_rule_passes_on_good_fixture(code: str, bad: str, good: str) -> None:
    report = analyze_fixture(good)
    assert code not in fired_codes(report), \
        f"{code} must stay quiet on {good}: {report.findings}"


def test_sim001_fires_once_per_wall_clock_read() -> None:
    report = analyze_fixture("simenv/bad_sim001.py")
    sim001 = [f for f in report.findings if f.rule == "SIM001"]
    assert len(sim001) == 2  # time.perf_counter and datetime.now
    assert all(f.path == "simenv/bad_sim001.py" for f in sim001)
    assert all(f.line > 0 for f in sim001)


def test_sim001_scoped_to_sim_path_packages() -> None:
    report = analyze_fixture("eval/good_sim001_scope.py")
    assert "SIM001" not in fired_codes(report)


def test_sim002_applies_everywhere() -> None:
    # Same source as bad_sim002 but under eval/: SIM002 still fires.
    report = analyze_fixture("eval/good_sim001_scope.py")
    assert "SIM002" not in fired_codes(report)
    report = analyze_fixture("simenv/bad_sim002.py")
    messages = [f.message for f in report.findings if f.rule == "SIM002"]
    assert any("unseeded" in message for message in messages)
    assert any("process-global" in message for message in messages)


def test_sim003_only_flags_generator_bodies() -> None:
    report = analyze_fixture("simenv/good_sim003.py")
    assert "SIM003" not in fired_codes(report)
    report = analyze_fixture("simenv/bad_sim003.py")
    sim003 = [f for f in report.findings if f.rule == "SIM003"]
    # time.sleep, socket.create_connection, open()
    assert len(sim003) == 3


def test_sim005_fires_once_per_hot_loop_allocation() -> None:
    report = analyze_fixture("sim005_bad/simenv/events.py")
    sim005 = [f for f in report.findings if f.rule == "SIM005"]
    # json.dumps, dict(event.state), copy.deepcopy — but not the
    # module-level json.loads setup.
    assert len(sim005) == 3


def test_sim005_scoped_to_hot_loop_filenames() -> None:
    # The same serialization calls in a sim-path module that is *not*
    # on the hot loop (messages.py owns encoding) stay unflagged.
    report = analyze_fixture("sim005_ok/simenv/messages.py")
    assert "SIM005" not in fired_codes(report)


# -- suppressions -----------------------------------------------------------

def test_file_scoped_suppression_moves_finding_aside() -> None:
    report = analyze_fixture("simenv/suppressed_sim001.py")
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["SIM001"]
    assert len(report.suppressions) == 1
    suppression = report.suppressions[0]
    assert suppression.rule == "SIM001"
    assert "false-positive" in suppression.reason


def test_stale_suppression_is_itself_a_finding() -> None:
    report = analyze_fixture("simenv/stale_allow.py")
    assert not report.ok
    assert fired_codes(report) == {"SUP001"}
    assert "suppresses nothing" in report.findings[0].message


# -- PROTO001 ---------------------------------------------------------------

def proto_project(name: str):
    root = FIXTURES / name / "community"
    return analyze_paths(sorted(root.glob("*.py")), root=FIXTURES)


def test_proto001_quiet_on_consistent_triangle() -> None:
    report = proto_project("proto_ok")
    assert "PROTO001" not in fired_codes(report), report.findings


def test_proto001_reports_every_broken_corner() -> None:
    report = proto_project("proto_bad")
    messages = [f.message for f in report.findings if f.rule == "PROTO001"]
    assert any("PS_ORPHAN" in m and "no server handler" in m
               for m in messages)
    assert any("PS_ORPHAN" in m and "no client" in m for m in messages)
    assert any("PS_UNSENT" in m and "no client" in m for m in messages)
    assert any("PS_GHOST" in m and "do not declare" in m for m in messages)
    assert any("PS_ROGUE" in m and "do not declare" in m for m in messages)


def test_proto001_skips_partial_module_sets() -> None:
    # Changed-file mode without protocol.py cannot see the triangle.
    report = analyze_fixture("proto_bad/community/client.py")
    assert "PROTO001" not in fired_codes(report)


def test_proto001_skips_incomplete_package() -> None:
    # protocol.py + server.py alone are not enough either: sibling
    # modules (filetransfer, discovery) declare and encode operations,
    # so judging the triangle from a package subset would report false
    # positives.  Regression: the real tree's protocol + server + client
    # subset used to yield 12 bogus "no server handler" findings.
    community = REPO_ROOT / "src" / "repro" / "community"
    subset = [community / "protocol.py", community / "server.py",
              community / "client.py"]
    report = analyze_paths(subset, root=REPO_ROOT)
    assert "PROTO001" not in fired_codes(report), report.findings


# -- PROTO002 ---------------------------------------------------------------

def test_proto002_quiet_when_every_op_is_exercised() -> None:
    report = proto_project("proto002_ok")
    assert "PROTO002" not in fired_codes(report), report.findings


def test_proto002_fires_on_unexercised_operation() -> None:
    report = proto_project("proto002_bad")
    messages = [f.message for f in report.findings if f.rule == "PROTO002"]
    assert any("PS_UNCOVERED" in m and "conformance exchange" in m
               for m in messages)
    assert not any("PS_PING" in m for m in messages)


def test_proto002_skips_projects_without_exchange_scripts() -> None:
    # The PROTO001 fixture has no exchanges.py: a project without a
    # conformance script module is out of PROTO002's jurisdiction
    # (and changed-file runs must not fail for the same reason).
    report = proto_project("proto_ok")
    assert "PROTO002" not in fired_codes(report), report.findings


def test_proto002_skips_partial_module_sets() -> None:
    report = analyze_fixture("proto002_bad/community/exchanges.py")
    assert "PROTO002" not in fired_codes(report)


def test_proto002_live_tree_covers_every_operation() -> None:
    # The real exchanges module must exercise the full vocabulary,
    # including ops registered outside protocol.py (PS_GETFILECHUNK).
    from repro.community import protocol

    exchanges = (REPO_ROOT / "src" / "repro" / "community" /
                 "exchanges.py").read_text()
    for op in sorted(protocol.OPERATIONS):
        assert op in exchanges, f"{op} missing from conformance exchanges"


# -- report plumbing --------------------------------------------------------

def test_json_report_shape() -> None:
    report = analyze_fixture("simenv/bad_sim001.py", "simenv/suppressed_sim001.py")
    payload = report.to_json()
    assert payload["schema"] == SCHEMA
    assert payload["files_scanned"] == 2
    assert payload["ok"] is False
    assert payload["counts"]["SIM001"] == 2
    assert len(payload["suppressed"]) == 1
    assert len(payload["suppressions"]) == 1
    round_trip = json.loads(json.dumps(payload))
    assert round_trip == payload


def test_findings_are_sorted_and_deterministic() -> None:
    once = analyze_fixture("simenv/bad_sim001.py", "simenv/bad_sim003.py")
    twice = analyze_fixture("simenv/bad_sim003.py", "simenv/bad_sim001.py")
    assert [f.render() for f in once.findings] == \
        [f.render() for f in twice.findings]
    assert once.findings == sorted(once.findings)


def test_rule_registry_is_complete() -> None:
    assert set(rule_codes()) >= {"SIM001", "SIM002", "SIM003", "SIM004",
                                 "PROTO001", "PROTO002", "SUP001",
                                 "PARSE001"}


# -- the live tree ----------------------------------------------------------

def test_live_tree_is_clean() -> None:
    report = analyze_tree(SRC_TREE)
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)
    assert report.suppressions == [], \
        "suppressions must stay within the committed budget (0)"
    assert len(report.files) > 90  # the whole package, not a subset


# -- the CLI ----------------------------------------------------------------

def run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECK_CLI), *argv],
        capture_output=True, text=True, cwd=str(REPO_ROOT))


def test_cli_clean_tree_exits_zero(tmp_path: Path) -> None:
    artifact = tmp_path / "report.json"
    result = run_cli("--output", str(artifact))
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(artifact.read_text())
    assert payload["schema"] == SCHEMA
    assert payload["ok"] is True


def test_cli_bad_fixture_exits_nonzero() -> None:
    result = run_cli(str(FIXTURES / "simenv" / "bad_sim001.py"))
    assert result.returncode == 1
    assert "SIM001" in result.stdout


def test_cli_suppression_budget_gates(tmp_path: Path) -> None:
    fixture = str(FIXTURES / "simenv" / "suppressed_sim001.py")
    strict = run_cli(fixture, "--max-suppressions", "0")
    assert strict.returncode == 1
    assert "suppression budget exceeded" in strict.stdout
    relaxed = run_cli(fixture, "--max-suppressions", "1")
    assert relaxed.returncode == 0, relaxed.stdout


def test_cli_json_mode() -> None:
    result = run_cli(str(FIXTURES / "simenv" / "bad_sim002.py"), "--json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["counts"]["SIM002"] >= 2
