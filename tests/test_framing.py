"""Property tests for the stream framing layer (net/framing.py).

The TCP backend's whole correctness story rests on the decoder: any
chunking of a valid frame stream must reproduce the frames exactly,
and any invalid stream must produce a *typed* error — never a hang,
never an unbounded buffer, never a crash with a non-protocol exception.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.framing import FrameDecoder, TruncatedFrameError
from repro.net.messages import MAX_FRAME_BYTES, FrameError, serialize

# JSON-shaped payloads (what the PS_* protocol actually moves).
_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-10**9, max_value=10**9),
    st.text(max_size=30))
_payloads = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=4)),
    max_leaves=12)


def _chunkings(data: bytes, cut_points: list[int]) -> list[bytes]:
    """Split ``data`` at the given sorted cut points."""
    chunks = []
    previous = 0
    for cut in sorted(cut_points):
        chunks.append(data[previous:cut])
        previous = cut
    chunks.append(data[previous:])
    return chunks


class TestRoundTrip:
    @settings(deadline=None, max_examples=200)
    @given(payloads=st.lists(_payloads, min_size=1, max_size=5),
           data=st.data())
    def test_frames_survive_arbitrary_chunking(self, payloads, data):
        """Any split of the byte stream — mid-prefix, mid-body,
        several frames coalesced — yields the same frames in order."""
        stream = b"".join(serialize(payload) for payload in payloads)
        cut_points = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(stream)), max_size=12))
        decoder = FrameDecoder()
        frames = []
        for chunk in _chunkings(stream, cut_points):
            frames.extend(decoder.feed(chunk))
        decoder.eof()  # no partial bytes may remain
        assert [frame.payload for frame in frames] == payloads
        assert b"".join(frame.raw for frame in frames) == stream
        assert decoder.buffered == 0

    @settings(deadline=None, max_examples=100)
    @given(payload=_payloads)
    def test_byte_at_a_time(self, payload):
        stream = serialize(payload)
        decoder = FrameDecoder()
        frames = []
        for index in range(len(stream)):
            frames.extend(decoder.feed(stream[index:index + 1]))
        assert len(frames) == 1
        assert frames[0].payload == payload


class TestTruncation:
    @settings(deadline=None, max_examples=100)
    @given(payload=_payloads, data=st.data())
    def test_truncated_stream_raises_typed_error(self, payload, data):
        """A stream cut mid-frame raises TruncatedFrameError at EOF —
        which is both a FrameError and a ConnectionError."""
        stream = serialize(payload)
        cut = data.draw(st.integers(min_value=1, max_value=len(stream) - 1))
        decoder = FrameDecoder()
        assert decoder.feed(stream[:cut]) == []
        with pytest.raises(TruncatedFrameError) as excinfo:
            decoder.eof()
        assert isinstance(excinfo.value, FrameError)
        assert isinstance(excinfo.value, ConnectionError)

    def test_clean_eof_is_silent(self):
        decoder = FrameDecoder()
        decoder.feed(serialize({"op": "PS_X"}))
        decoder.eof()  # complete frames consumed; nothing buffered


class TestJunk:
    @settings(deadline=None, max_examples=150)
    @given(junk=st.binary(min_size=4, max_size=64))
    def test_junk_bytes_never_hang_or_crash(self, junk):
        """Arbitrary bytes either decode (if they happen to be a valid
        frame), wait for more input, or raise FrameError — nothing
        else escapes."""
        decoder = FrameDecoder()
        try:
            decoder.feed(junk)
        except FrameError:
            # Poisoned: every further feed refuses with the same type.
            with pytest.raises(FrameError):
                decoder.feed(b"\x00")

    def test_oversize_prefix_rejected_before_buffering(self):
        """A hostile length prefix fails immediately; the decoder never
        waits for (or allocates) the declared gigabytes."""
        prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(prefix)

    def test_non_json_body_is_a_frame_error(self):
        body = b"\xff\xfenot json"
        stream = struct.pack(">I", len(body)) + body
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(stream)

    def test_poisoned_decoder_eof_stays_quiet(self):
        """After a junk-body failure, eof() must not mask the original
        error with a second exception."""
        body = b"not json"
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(struct.pack(">I", len(body)) + body)
        decoder.eof()  # already poisoned; no double report
