"""Smoke tests: every example script runs to completion.

The examples double as end-to-end system tests — each drives the full
stack through a different scenario — so a broken example means a
broken deliverable.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))

#: Command-line arguments per example (scripted input where needed).
ARGUMENTS = {
    "interactive_menu.py": ["1", "2", "4", "7", "0"],
    "table8_comparison.py": ["1"],  # one trial keeps the test fast
}


@pytest.mark.parametrize("script", EXAMPLES, ids=[s.name for s in EXAMPLES])
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv",
                        [script.name] + ARGUMENTS.get(script.name, []))
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert "Done" in out or "PeerHood" in out


def test_quickstart_output_shows_the_headline_behaviour(capsys,
                                                        monkeypatch):
    script = Path(__file__).parent.parent / "examples" / "quickstart.py"
    monkeypatch.setattr(sys, "argv", [script.name])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert "alice is in groups: ['football', 'music']" in out
    assert "NOT_TRUSTED_YET" in out           # trust gating visible
    assert "SUCCESSFULLY_WRITTEN" in out      # messaging worked
