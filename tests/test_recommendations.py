"""Tests for interest recommendations."""

from __future__ import annotations

import pytest

from repro.community.recommendations import InterestRecommender, _share_stem
from repro.eval.testbed import Testbed


@pytest.fixture
def crowd():
    bed = Testbed(seed=19, technologies=("bluetooth",))
    alice = bed.add_member("alice", ["football"])
    bed.add_member("bob", ["football", "chess", "music"])
    bed.add_member("carol", ["chess", "music"])
    bed.add_member("dave", ["chess"])
    bed.run(40.0)
    yield bed, alice
    bed.stop()


class TestRecommend:
    def test_ranked_by_popularity(self, crowd):
        bed, alice = crowd
        recommender = InterestRecommender(alice.app.engine)
        recommendations = recommender.recommend()
        assert [r.interest for r in recommendations] == ["chess", "music"]
        assert recommendations[0].score == 3
        assert recommendations[0].holders == ("bob", "carol", "dave")

    def test_own_interests_excluded(self, crowd):
        bed, alice = crowd
        recommendations = InterestRecommender(alice.app.engine).recommend()
        assert "football" not in [r.interest for r in recommendations]

    def test_limit_respected(self, crowd):
        bed, alice = crowd
        recommendations = InterestRecommender(
            alice.app.engine).recommend(limit=1)
        assert len(recommendations) == 1

    def test_requires_login(self, crowd):
        bed, alice = crowd
        alice.app.logout()
        with pytest.raises(PermissionError):
            InterestRecommender(alice.app.engine).recommend()

    def test_adopt_joins_the_group_immediately(self, crowd):
        bed, alice = crowd
        recommender = InterestRecommender(alice.app.engine)
        members = recommender.adopt("chess")
        assert "alice" in members
        assert set(members) == {"alice", "bob", "carol", "dave"}
        assert "chess" in alice.app.profile.interests
        assert "chess" in alice.app.my_groups()

    def test_empty_neighbourhood_recommends_nothing(self):
        bed = Testbed(seed=23)
        alice = bed.add_member("alice", ["football"])
        bed.run(10.0)
        assert InterestRecommender(alice.app.engine).recommend() == []
        bed.stop()


class TestSynonymCandidates:
    def test_stem_heuristic(self):
        assert _share_stem("biking", "bike rides")
        assert _share_stem("england football", "football")
        assert not _share_stem("chess", "music")
        assert not _share_stem("art", "arts")  # stems shorter than 4

    def test_candidates_found_in_neighbourhood(self):
        bed = Testbed(seed=27, semantic=True, technologies=("bluetooth",))
        ann = bed.add_member("ann", ["biking"])
        bed.add_member("ben", ["bike touring"])
        bed.run(40.0)
        recommender = InterestRecommender(ann.app.engine)
        assert ("bike touring", "biking") in recommender.synonym_candidates()
        # Teaching the pair removes it from the candidate list.
        ann.app.engine.teach_semantics("bike touring", "biking")
        assert ("bike touring", "biking") not in \
            recommender.synonym_candidates()
        bed.stop()
