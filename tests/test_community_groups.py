"""Tests for groups, the group registry and membership history."""

from __future__ import annotations

from repro.community.groups import Group, GroupRegistry


class TestGroup:
    def test_add_and_remove(self):
        group = Group("football", 0.0)
        assert group.add("alice", 1.0)
        assert not group.add("alice", 2.0)  # already a member
        assert "alice" in group
        assert group.remove("alice", 3.0)
        assert not group.remove("alice", 4.0)

    def test_history_records_events(self):
        group = Group("football", 0.0)
        group.add("alice", 1.0)
        group.remove("alice", 5.0, reason="departed")
        kinds = [(event.member_id, event.joined, event.reason)
                 for event in group.history]
        assert kinds == [("alice", True, "dynamic"),
                         ("alice", False, "departed")]

    def test_manual_membership_tracked(self):
        group = Group("football", 0.0)
        group.add("alice", 1.0, reason="manual")
        assert "alice" in group.manual_members
        group.remove("alice", 2.0)
        assert "alice" not in group.manual_members

    def test_dynamic_then_manual_upgrade(self):
        group = Group("g", 0.0)
        group.add("alice", 1.0, reason="dynamic")
        group.add("alice", 2.0, reason="manual")
        assert "alice" in group.manual_members


class TestGroupRegistry:
    def test_ensure_creates_once(self):
        registry = GroupRegistry()
        group = registry.ensure("football", 1.0)
        assert registry.ensure("football", 9.0) is group
        assert group.created_at == 1.0

    def test_names_sorted(self):
        registry = GroupRegistry()
        registry.ensure("zebra", 0.0)
        registry.ensure("alpha", 0.0)
        assert registry.names() == ["alpha", "zebra"]

    def test_non_empty_filters(self):
        registry = GroupRegistry()
        registry.ensure("empty", 0.0)
        registry.ensure("full", 0.0).add("alice", 1.0)
        assert [group.interest for group in registry.non_empty()] == ["full"]

    def test_groups_of_member(self):
        registry = GroupRegistry()
        registry.ensure("a", 0.0).add("alice", 1.0)
        registry.ensure("b", 0.0).add("alice", 1.0)
        registry.ensure("c", 0.0).add("bob", 1.0)
        assert registry.groups_of("alice") == ["a", "b"]

    def test_remove_member_everywhere(self):
        registry = GroupRegistry()
        registry.ensure("a", 0.0).add("alice", 1.0)
        registry.ensure("b", 0.0).add("alice", 1.0)
        affected = registry.remove_member_everywhere("alice", 2.0)
        assert affected == ["a", "b"]
        assert registry.groups_of("alice") == []

    def test_drop_empty(self):
        registry = GroupRegistry()
        registry.ensure("a", 0.0)
        registry.ensure("b", 0.0).add("x", 1.0)
        assert registry.drop_empty() == 1
        assert registry.names() == ["b"]

    def test_merge_moves_members_and_preserves_manual(self):
        registry = GroupRegistry()
        cycling = registry.ensure("cycling", 0.0)
        cycling.add("ben", 1.0)
        cycling.add("cat", 1.0, reason="manual")
        biking = registry.ensure("biking", 0.0)
        biking.add("ann", 1.0)
        registry.merge("cycling", "biking", 2.0)
        merged = registry.get("biking")
        assert merged.members == {"ann", "ben", "cat"}
        assert "cat" in merged.manual_members
        assert registry.get("cycling") is None

    def test_merge_into_self_is_noop(self):
        registry = GroupRegistry()
        registry.ensure("a", 0.0).add("x", 1.0)
        registry.merge("a", "a", 2.0)
        assert registry.get("a").members == {"x"}

    def test_merge_absent_source_is_noop(self):
        registry = GroupRegistry()
        registry.merge("ghost", "a", 1.0)
        assert registry.names() == []
