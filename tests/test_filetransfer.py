"""Tests for trust-gated chunked file transfer."""

from __future__ import annotations

import pytest

from repro.community import protocol
from repro.community.filetransfer import (
    DEFAULT_CHUNK_BYTES,
    FileDownloader,
    PS_GETFILECHUNK,
)
from repro.eval.testbed import Testbed
from repro.net.faults import FaultConfig


@pytest.fixture
def sharing_bed():
    bed = Testbed(seed=51, technologies=("bluetooth",))
    alice = bed.add_member("alice", ["x"])
    bob = bed.add_member("bob", ["x"])
    bob.app.accept_trusted("alice")
    bob.app.share_file("big.bin", 100_000)
    bob.app.share_file("tiny.txt", 10)
    bed.run(30.0)
    yield bed, alice, bob
    bed.stop()


class TestDownload:
    def test_full_download_completes(self, sharing_bed):
        bed, alice, bob = sharing_bed
        progress = bed.execute(alice.app.download_file("bob", "big.bin"),
                               timeout=600.0)
        assert progress.complete
        assert progress.received_bytes == 100_000
        assert progress.total_bytes == 100_000
        expected_chunks = -(-100_000 // DEFAULT_CHUNK_BYTES)
        assert progress.chunks == expected_chunks
        assert bob.app.server.file_service.bytes_served == 100_000

    def test_small_file_single_chunk(self, sharing_bed):
        bed, alice, _ = sharing_bed
        progress = bed.execute(alice.app.download_file("bob", "tiny.txt"))
        assert progress.complete
        assert progress.chunks == 1

    def test_transfer_takes_virtual_time_proportional_to_size(self,
                                                              sharing_bed):
        bed, alice, _ = sharing_bed
        start = bed.env.now
        bed.execute(alice.app.download_file("bob", "tiny.txt"))
        small_time = bed.env.now - start
        start = bed.env.now
        bed.execute(alice.app.download_file("bob", "big.bin"),
                    timeout=600.0)
        large_time = bed.env.now - start
        assert large_time > small_time * 5

    def test_untrusted_download_refused(self, sharing_bed):
        bed, alice, bob = sharing_bed
        bob.app.remove_trusted("alice")
        progress = bed.execute(alice.app.download_file("bob", "big.bin"))
        assert not progress.complete
        assert progress.failed == protocol.NOT_TRUSTED_YET

    def test_missing_file_fails_cleanly(self, sharing_bed):
        bed, alice, _ = sharing_bed
        progress = bed.execute(alice.app.download_file("bob", "ghost.bin"))
        assert not progress.complete
        assert progress.failed == protocol.UNSUCCESSFULL

    def test_unknown_member_raises(self, sharing_bed):
        bed, alice, _ = sharing_bed
        with pytest.raises(LookupError):
            bed.execute(alice.app.download_file("nobody", "big.bin"))

    def test_history_tracks_transfers(self, sharing_bed):
        bed, alice, _ = sharing_bed
        bed.execute(alice.app.download_file("bob", "tiny.txt"))
        bed.execute(alice.app.download_file("bob", "ghost.bin"))
        downloader = alice.app.downloader
        assert len(downloader.history) == 2
        assert len(downloader.completed_transfers) == 1

    def test_chunk_request_validation(self, sharing_bed):
        bed, alice, bob = sharing_bed

        def bad_range():
            payload = yield from alice.app.client._single(
                "bob", protocol.make_request(
                    PS_GETFILECHUNK, member_id="bob", requester="alice",
                    name="big.bin", offset=-5, length=100))
            return payload

        payload = bed.execute(bad_range())
        assert protocol.response_status(payload) == protocol.UNSUCCESSFULL

    def test_downloader_rejects_bad_chunk_size(self, sharing_bed):
        _, alice, _ = sharing_bed
        with pytest.raises(ValueError):
            FileDownloader(alice.app.store, alice.app.pool, chunk_bytes=0)


class TestResume:
    def test_zero_byte_file_downloads_complete(self, sharing_bed):
        bed, alice, bob = sharing_bed
        bob.app.share_file("empty.txt", 0)
        progress = bed.execute(alice.app.download_file("bob", "empty.txt"))
        assert progress.complete
        assert progress.total_bytes == 0
        assert progress.received_bytes == 0
        assert progress.chunks == 1  # one round trip confirms the EOF
        assert progress.retries == 0

    def test_flap_mid_transfer_resumes_from_offset(self, sharing_bed):
        """A broken link mid-download resumes, not restarts."""
        bed, alice, bob = sharing_bed
        injector = bed.enable_faults(FaultConfig(flap_down_s=3.0))

        def flap_then_download():
            # Break the link after the first chunks are through.
            bed.env.call_in(1.0, injector.flap, "bob")
            progress = yield from alice.app.download_file("bob", "big.bin")
            return progress

        progress = bed.execute(flap_then_download(), timeout=900.0)
        assert progress.complete
        assert progress.received_bytes == 100_000
        assert progress.resumes >= 1
        assert progress.retries >= 1
        # Resume means the server re-served only the in-flight chunk:
        # total bytes served stay well under a full second pass.
        assert bob.app.server.file_service.bytes_served < 2 * 100_000

    def test_exhausted_retries_fail_typed(self, sharing_bed):
        """A link that never comes back fails the transfer gracefully."""
        bed, alice, bob = sharing_bed
        injector = bed.enable_faults(FaultConfig())

        def kill_link_then_download():
            bed.env.call_in(1.0, injector.flap, "bob", 10_000.0)
            progress = yield from alice.app.download_file("bob", "big.bin")
            return progress

        progress = bed.execute(kill_link_then_download(), timeout=2000.0)
        assert not progress.complete
        assert progress.failed is not None
        assert "connection lost" in progress.failed
        assert alice.app.downloader.retry_counters.giveups == 1
        assert 0 < progress.received_bytes < 100_000
