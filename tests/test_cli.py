"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_msc_figure_range_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["msc", "10"])
        args = build_parser().parse_args(["msc", "11"])
        assert args.figure == 11

    def test_ablation_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])


class TestCommands:
    def test_demo_prints_groups(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "alice" in out
        assert "football" in out

    def test_msc_renders_figure(self, capsys):
        assert main(["msc", "17"]) == 0
        out = capsys.readouterr().out
        assert "PS_MSG" in out
        assert "Figure 17" in out

    def test_ablation_semantics(self, capsys):
        assert main(["ablation", "semantics"]) == 0
        out = capsys.readouterr().out
        assert "groups before teaching" in out

    def test_seed_flag_changes_nothing_structural(self, capsys):
        assert main(["--seed", "5", "demo"]) == 0
        assert "football" in capsys.readouterr().out

    def test_overlay_command(self, capsys):
        assert main(["overlay"]) == 0
        out = capsys.readouterr().out
        assert "k=1" in out and "k=5" in out
        assert "group size 6" in out  # whole chain reached at k=5
