"""Smoke and unit tests for the wall-clock bench harness.

The heavy scenarios get their wall-clock scrutiny from CI's bench job;
here we pin the *contract*: ``scripts/bench.py --quick`` emits a valid
``BENCH_v2.json`` (schema keys, positive timings, full scenario list),
``--profile`` writes loadable pstats, and the regression comparator
flags exactly the right situations.
"""

from __future__ import annotations

import json
import pstats
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.bench import (
    ALLOC_KEYS,
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    MIN_GATED_EVENTS,
    REPORT_KEYS,
    SCENARIO_KEYS,
    SCENARIOS,
    SHARDED_SCENARIOS,
    compare_reports,
    run_bench,
    run_scenario,
    run_sharded_scenario,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_CLI = REPO_ROOT / "scripts" / "bench.py"


def _run_cli(args: list[str], tmp_path: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(BENCH_CLI), *args],
        capture_output=True, text=True, timeout=600, cwd=tmp_path)


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory) -> dict:
    """One full ``--quick`` CLI run shared by the schema assertions."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_v2.json"
    proc = subprocess.run(
        [sys.executable, str(BENCH_CLI), "--quick", "--repeats", "1",
         "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return json.loads(out.read_text(encoding="utf-8"))


class TestSchemaSmoke:
    def test_report_carries_every_top_level_key(self, quick_report):
        for key in REPORT_KEYS:
            assert key in quick_report, f"missing report key {key!r}"
        assert quick_report["schema"] == BENCH_SCHEMA
        assert quick_report["schema_version"] == BENCH_SCHEMA_VERSION
        assert quick_report["quick"] is True

    def test_scenario_list_matches_registry(self, quick_report):
        assert set(quick_report["scenarios"]) == set(SCENARIOS)

    def test_every_scenario_has_positive_timings(self, quick_report):
        for name, record in quick_report["scenarios"].items():
            for key in SCENARIO_KEYS:
                assert key in record, f"{name} missing {key!r}"
            assert record["wall_seconds"] > 0, name
            assert record["events_processed"] > 0, name
            assert record["events_per_sec"] > 0, name
            assert record["rss_mb"] > 0, name

    def test_calibration_recorded(self, quick_report):
        assert quick_report["calibration_seconds"] > 0


class TestProfileMode:
    def test_profile_writes_readable_pstats(self, tmp_path):
        out = tmp_path / "boot.json"
        proc = _run_cli(["--quick", "--repeats", "1", "--profile",
                         "--scenario", "testbed_boot",
                         "--output", str(out)], tmp_path)
        assert proc.returncode == 0, proc.stderr
        pstats_path = out.with_suffix(".pstats")
        assert pstats_path.exists()
        stats = pstats.Stats(str(pstats_path))
        assert stats.total_calls > 0


class TestRunScenario:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_bench(scenarios=["no_such_scenario"])

    def test_boot_scenario_in_process(self):
        result = run_scenario("testbed_boot", quick=True, repeats=1)
        assert result.scenario == "testbed_boot"
        assert result.events_processed > 0
        assert result.sim_seconds == pytest.approx(1.0)
        assert result.alloc is None
        assert "alloc" not in result.as_dict()


class TestAllocMode:
    def test_alloc_pass_attaches_profile(self):
        result = run_scenario("testbed_boot", quick=True, repeats=1,
                              alloc=True)
        assert result.alloc is not None
        for key in ALLOC_KEYS:
            assert key in result.alloc, f"missing alloc key {key!r}"
        assert result.alloc["tracemalloc_peak_kb"] > 0
        assert result.alloc["events_processed"] > 0
        assert result.alloc["gc_uncollectable"] == 0
        assert result.as_dict()["alloc"] == result.alloc

    def test_cli_flag_lands_in_report(self, tmp_path):
        out = tmp_path / "alloc.json"
        proc = _run_cli(["--quick", "--repeats", "1", "--alloc",
                         "--scenario", "testbed_boot",
                         "--output", str(out)], tmp_path)
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text(encoding="utf-8"))
        record = report["scenarios"]["testbed_boot"]
        for key in ALLOC_KEYS:
            assert key in record["alloc"]


class TestShardedScenarios:
    def test_discovery_names_are_shardable(self):
        """Every discovery_* bench scenario must have a sharded twin,
        so CI's --shards runs cover the same names the perf gate does."""
        discovery = {name for name in SCENARIOS
                     if name.startswith("discovery_n")}
        assert discovery <= set(SHARDED_SCENARIOS)
        assert "discovery_n100k" in SHARDED_SCENARIOS

    def test_run_sharded_scenario_reports_both_views(self):
        scenario, outcome = run_sharded_scenario("discovery_n16", shards=2,
                                                 processes=False)
        assert scenario.scenario == "discovery_n16"
        assert scenario.wall_seconds > 0
        assert scenario.events_processed == outcome.events > 0
        assert outcome.shards == 2
        assert outcome.device_count == 16

    def test_run_bench_shards_path_emits_schema_report(self):
        report = run_bench(quick=True, scenarios=["discovery_n16"], shards=1)
        assert report["shards"] == 1
        record = report["scenarios"]["discovery_n16"]
        for key in SCENARIO_KEYS:
            assert key in record
        assert record["shards"] == 1

    def test_sharded_events_match_across_shard_counts(self):
        """The bench-level view of the determinism contract: the
        events_processed field is identical at any shard count."""
        one = run_bench(quick=True, scenarios=["discovery_n16"], shards=1)
        two = run_bench(quick=True, scenarios=["discovery_n16"], shards=2)
        assert (one["scenarios"]["discovery_n16"]["events_processed"]
                == two["scenarios"]["discovery_n16"]["events_processed"])

    def test_sharded_only_scenarios_need_shards_flag(self):
        with pytest.raises(KeyError, match="--shards"):
            run_bench(quick=True, scenarios=["discovery_n100k"])


def _report(wall: float, *, cal: float = 1.0, name: str = "s") -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "calibration_seconds": cal,
        "scenarios": {name: {"wall_seconds": wall,
                             "events_processed": 1000,
                             "events_per_sec": 1000 / wall,
                             "rss_mb": 10.0,
                             "sim_seconds": 30.0}},
    }


class TestCompareReports:
    def test_within_tolerance_passes(self):
        assert compare_reports(_report(1.2), _report(1.0)) == []

    def test_large_regression_flagged(self):
        problems = compare_reports(_report(1.5), _report(1.0))
        assert len(problems) == 1
        assert "exceeds" in problems[0]

    def test_absolute_slack_forgives_millisecond_jitter(self):
        # 0.004s vs 0.002s is 2x relative, but far inside the absolute
        # slack that keeps tiny scenarios from flaking.
        assert compare_reports(_report(0.004), _report(0.002)) == []

    def test_missing_scenario_flagged(self):
        current = _report(1.0)
        current["scenarios"] = {}
        problems = compare_reports(current, _report(1.0))
        assert problems and "not run" in problems[0]

    def test_schema_mismatch_requests_regeneration(self):
        baseline = _report(1.0)
        baseline["schema_version"] = 1
        problems = compare_reports(_report(1.0), baseline)
        assert problems and "regenerate" in problems[0]

    def test_calibration_scales_allowance_for_slower_host(self):
        # Host is 2x slower than the baseline machine: a 2x wall time
        # is *not* a regression once scaled.
        assert compare_reports(_report(2.0, cal=2.0), _report(1.0)) == []

    def test_calibration_scale_is_clamped(self):
        # A claimed 100x-slower host must not hide a real 10x slowdown:
        # the scale clamps at 4x.
        problems = compare_reports(_report(10.0, cal=100.0), _report(1.0))
        assert len(problems) == 1

    def test_low_event_scenarios_skip_relative_gate(self):
        # The quick-mode chaos replay (~581 events) is scheduler noise
        # around milliseconds of work; a 2x wall blip is not a
        # regression there.
        current, baseline = _report(2.0), _report(1.0)
        for report in (current, baseline):
            report["scenarios"]["s"]["events_processed"] = 581
        assert compare_reports(current, baseline) == []

    def test_low_event_scenarios_keep_absolute_guard(self):
        current, baseline = _report(20.0), _report(1.0)
        for report in (current, baseline):
            report["scenarios"]["s"]["events_processed"] = 581
        problems = compare_reports(current, baseline)
        assert len(problems) == 1
        assert "jitter-exempt guard" in problems[0]

    def test_gate_applies_at_event_floor(self):
        # Exactly MIN_GATED_EVENTS events: the relative gate holds.
        current, baseline = _report(1.5), _report(1.0)
        for report in (current, baseline):
            report["scenarios"]["s"]["events_processed"] = MIN_GATED_EVENTS
        assert len(compare_reports(current, baseline)) == 1
