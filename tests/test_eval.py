"""Tests for the evaluation harness: testbed, workloads, Table 8,
ablations, the paper testbed catalogue and reporting."""

from __future__ import annotations

import pytest

from repro.eval.ablations import (
    run_scan_interval_sweep,
    run_semantics_ablation,
    run_technology_ablation,
)
from repro.eval.paperbed import (
    HARDWARE_SPECS,
    SOFTWARE_SPECS,
    build_paper_testbed,
)
from repro.eval.reporting import format_table, seconds
from repro.eval.table8 import (
    PAPER_TABLE8,
    format_table8,
    run_peerhood_column,
    run_sns_column,
)
from repro.eval.testbed import Testbed
from repro.eval.workloads import populate_neighborhood, random_interests
from repro.sns.devices import NOKIA_N810
from repro.sns.sites import FACEBOOK_2008


class TestTestbed:
    def test_duplicate_device_rejected(self, bed):
        bed.add_device("a")
        with pytest.raises(ValueError):
            bed.add_device("a")

    def test_default_placement_keeps_cluster_in_bt_range(self, bed):
        for index in range(7):
            bed.add_device(f"d{index}")
        ids = [f"d{index}" for index in range(7)]
        for a in ids:
            for b in ids:
                if a != b:
                    assert bed.world.distance_between(a, b) <= 15.0

    def test_member_handle_exposes_ids(self, bed):
        member = bed.add_member("alice", ["x"])
        assert member.device_id == "alice"
        assert member.member_id == "alice"

    def test_member_without_login_raises_on_member_id(self, bed):
        member = bed.add_member("alice", ["x"], auto_login=False)
        with pytest.raises(RuntimeError):
            _ = member.member_id

    def test_execute_timeout(self, bed):
        from repro.simenv import Delay

        def forever():
            while True:
                yield Delay(10.0)

        with pytest.raises(TimeoutError):
            bed.execute(forever(), timeout=5.0)

    def test_execute_propagates_exceptions_and_keeps_running(self, bed):
        def failing():
            yield from ()
            raise ValueError("bad op")

        with pytest.raises(ValueError):
            bed.execute(failing())
        bed.run(5.0)  # must not raise SimulationError afterwards

    def test_gprs_testbed_registers_gateway(self):
        bed = Testbed(seed=1, technologies=("gprs",))
        assert bed.medium.has_gateway("gprs")
        bed.stop()


class TestWorkloads:
    def test_random_interests_bounds(self, bed):
        rng = bed.env.random.stream("t")
        for _ in range(50):
            interests = random_interests(rng)
            assert 1 <= len(interests) <= 4
            assert len(set(interests)) == len(interests)

    def test_populate_neighborhood_shared_interest(self, bed):
        members = populate_neighborhood(bed, 5, shared_interest="football")
        assert len(members) == 5
        for member in members:
            assert "football" in member.app.profile.interests
        bed.run(60.0)
        group = members[0].app.group_members("football")
        assert len(group) == 5


class TestPaperTestbed:
    def test_specs_match_tables_4_and_5(self):
        assert SOFTWARE_SPECS[0].software == "PeerHood"
        assert SOFTWARE_SPECS[0].version == "Version 0.2"
        names = [spec.name for spec in HARDWARE_SPECS]
        assert names == ["Desktop PC1", "Desktop PC2",
                         "Laptop (IBM ThinkPad T40)"]
        assert HARDWARE_SPECS[0].memory_mb == 1005.0
        assert HARDWARE_SPECS[1].processor.startswith("Intel(R) Pentium(R) III")

    def test_paper_testbed_forms_football_group(self):
        bed, members = build_paper_testbed(seed=2)
        bed.run(60.0)
        group = members["pc1"].app.group_members("football")
        assert group == ["pc1", "pc2", "t40"]
        bed.stop()

    def test_paper_testbed_is_bluetooth_only(self):
        bed, members = build_paper_testbed(seed=2)
        assert list(members["pc1"].device.daemon.plugins) == ["bluetooth"]
        bed.stop()


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["A", "Long header"],
                             [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "Long header" in lines[1]
        assert len({len(line) for line in lines[1:2]}) == 1

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["A"], [["1", "2"]])

    def test_seconds_formatting(self):
        assert seconds(57.6) == "58 Seconds"


class TestTable8:
    def test_sns_column_deterministic(self):
        a = run_sns_column(FACEBOOK_2008, NOKIA_N810, seed=1, trials=2)
        b = run_sns_column(FACEBOOK_2008, NOKIA_N810, seed=1, trials=2)
        assert a == b

    def test_peerhood_column_matches_paper_shape(self):
        column = run_peerhood_column(seed=0, trials=2)
        paper = PAPER_TABLE8["PeerHood Community"]
        assert column.join_s == 0.0
        assert column.search_s == pytest.approx(paper.search_s, rel=0.5)
        assert column.total_s < 60.0

    def test_peerhood_faster_than_every_sns_cell(self):
        phc = run_peerhood_column(seed=0, trials=2)
        sns = run_sns_column(FACEBOOK_2008, NOKIA_N810, seed=0, trials=2)
        assert phc.total_s < sns.total_s

    def test_format_table8_includes_paper_reference(self):
        measured = {"PeerHood Community": PAPER_TABLE8["PeerHood Community"]}
        text = format_table8(measured)
        assert "paper: 11" in text
        assert "Average Group search Time" in text


class TestAblations:
    def test_semantics_ablation_merges_groups(self):
        result = run_semantics_ablation(seed=1)
        assert "biking" in result.groups_before
        assert set(result.biking_members_before) == {"ann", "cat"}
        assert set(result.merged_members_after) == {"ann", "ben", "cat"}

    def test_technology_ablation_ordering(self):
        rows = {row.technology: row for row in run_technology_ablation(seed=1)}
        assert rows["wlan"].formation_time_s < rows["bluetooth"].formation_time_s
        assert rows["gprs"].cost > 0.0
        assert rows["bluetooth"].cost == 0.0
        assert rows["wlan"].cost == 0.0

    def test_scan_interval_sweep_monotone_tail(self):
        points = run_scan_interval_sweep(intervals=(2.0, 20.0), seed=1)
        assert points[0].formation_time_s < points[1].formation_time_s
