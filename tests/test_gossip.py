"""Tests for gossip-based neighbourhood expansion."""

from __future__ import annotations

import pytest

from repro.adhoc import GossipDiscovery, NeighborGraph, OverlayGroupDiscovery, RelayNode
from repro.eval.testbed import Testbed
from repro.mobility import Point
from repro.radio.standards import BLUETOOTH


def _chain_bed(count: int = 5):
    bed = Testbed(seed=401, technologies=("bluetooth",))
    members = []
    for index in range(count):
        member = bed.add_member(chr(ord("a") + index), ["football"],
                                position=Point(60.0 + index * 8.0, 100.0))
        RelayNode(bed.env, member.device.stack, BLUETOOTH)
        members.append(member)
    bed.run(30.0)  # daemons learn their 1-hop tables
    return bed, members


def _gossip_for(bed, member) -> GossipDiscovery:
    return GossipDiscovery(bed.env, member.device.stack,
                           member.device.daemon, BLUETOOTH)


class TestGossipExpansion:
    def test_depth_one_is_the_local_table(self):
        bed, members = _chain_bed()
        result = bed.execute(_gossip_for(bed, members[0]).collect(1))
        assert set(result.paths) == {"b"}
        assert result.paths["b"] == ("a", "b")
        assert result.queries == 0  # depth 1 needs no network
        bed.stop()

    def test_expansion_learns_paths_hop_by_hop(self):
        bed, members = _chain_bed()
        result = bed.execute(_gossip_for(bed, members[0]).collect(4),
                             timeout=600.0)
        assert result.paths == {
            "b": ("a", "b"),
            "c": ("a", "b", "c"),
            "d": ("a", "b", "c", "d"),
            "e": ("a", "b", "c", "d", "e"),
        }
        assert result.hop_count("e") == 4
        assert result.queries == 3  # asked b, c and d
        assert result.elapsed_s > 0.0
        bed.stop()

    def test_expansion_stops_early_when_exhausted(self):
        bed, members = _chain_bed(count=3)
        result = bed.execute(_gossip_for(bed, members[0]).collect(10),
                             timeout=600.0)
        assert set(result.paths) == {"b", "c"}
        bed.stop()

    def test_k_validation(self):
        bed, members = _chain_bed(count=2)
        with pytest.raises(ValueError):
            bed.execute(_gossip_for(bed, members[0]).collect(0))
        bed.stop()

    def test_gossip_costs_grow_with_depth(self):
        bed, members = _chain_bed()
        shallow = bed.execute(_gossip_for(bed, members[0]).collect(2),
                              timeout=600.0)
        deep = bed.execute(_gossip_for(bed, members[0]).collect(4),
                           timeout=600.0)
        assert deep.elapsed_s > shallow.elapsed_s
        assert deep.queries > shallow.queries
        bed.stop()


class TestGossipOverlayDiscovery:
    def test_gossip_variant_matches_oracle_membership(self):
        bed, members = _chain_bed()
        graph = NeighborGraph(bed.medium, "bluetooth")

        oracle = OverlayGroupDiscovery(bed.env, members[0].device.stack,
                                       graph, BLUETOOTH,
                                       members[0].app.store)
        bed.execute(oracle.discover(k=4), timeout=1200.0)

        gossip = OverlayGroupDiscovery(bed.env, members[0].device.stack,
                                       graph, BLUETOOTH,
                                       members[0].app.store)
        bed.execute(gossip.discover_gossip(4, members[0].device.daemon),
                    timeout=1200.0)
        assert gossip.members_of("football") == oracle.members_of("football")
        assert gossip.reach() == oracle.reach() == 4
        bed.stop()

    def test_gossip_probes_record_hop_counts(self):
        bed, members = _chain_bed()
        graph = NeighborGraph(bed.medium, "bluetooth")
        overlay = OverlayGroupDiscovery(bed.env, members[0].device.stack,
                                        graph, BLUETOOTH,
                                        members[0].app.store)
        bed.execute(overlay.discover_gossip(3, members[0].device.daemon),
                    timeout=1200.0)
        hops = {probe.device_id: probe.hops for probe in overlay.probes}
        assert hops == {"b": 1, "c": 2, "d": 3}
        bed.stop()
