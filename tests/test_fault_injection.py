"""Tests for the fault-injection layer and the retry machinery.

Covers the units (:mod:`repro.net.faults`, :mod:`repro.net.retry`) and
the regression the ISSUE pins: a device flap in the middle of an open
``PS_GETPROFILE`` exchange must not leave orphaned connection entries
in any :class:`NetworkStack`'s registry.
"""

from __future__ import annotations

import pytest

from repro.community import protocol
from repro.eval.testbed import Testbed
from repro.net.faults import FaultConfig, InjectedFaultError
from repro.net.retry import (
    AttemptTimeoutError,
    Degraded,
    RetryCounters,
    RetryPolicy,
    is_degraded,
    recv_with_timeout,
)
from repro.radio.medium import NotReachableError
from repro.simenv import Environment


# -- FaultConfig ----------------------------------------------------------

class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(connect_failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(latency_spike_factor=0.5)
        with pytest.raises(ValueError):
            FaultConfig(flap_down_s=-1.0)

    def test_chaos_profile_scales_with_level(self):
        config = FaultConfig.chaos(0.2)
        assert config.drop_rate == pytest.approx(0.2)
        assert config.connect_failure_rate == pytest.approx(0.1)
        assert config.corruption_rate == pytest.approx(0.05)
        assert config.flap_rate == pytest.approx(0.02)

    def test_scaled_caps_at_one(self):
        config = FaultConfig(drop_rate=0.6).scaled(3.0)
        assert config.drop_rate == 1.0


# -- RetryPolicy ----------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_caps_and_jitters_down(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=4.0, jitter=0.5)
        env = Environment(seed=9)
        rng = env.random.stream("test")
        for index, cap in ((1, 1.0), (2, 2.0), (3, 4.0), (6, 4.0)):
            delay = policy.backoff_delay(index, rng)
            assert cap * 0.5 <= delay <= cap

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=3.0,
                             max_delay_s=100.0, jitter=0.0)
        assert policy.backoff_delay(3, None) == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        policy = RetryPolicy()
        with pytest.raises(ValueError):
            policy.backoff_delay(0, None)

    def test_budget(self):
        policy = RetryPolicy(budget_s=10.0)
        assert policy.within_budget(0.0, 9.9)
        assert not policy.within_budget(0.0, 10.0)
        assert RetryPolicy(budget_s=None).within_budget(0.0, 1e9)

    def test_degraded_is_falsy_and_typed(self):
        degraded = Degraded(operation="PS_MSG", reason="all peers down",
                            attempts=3, failed_peers=("bob",))
        assert not degraded
        assert is_degraded(degraded)
        assert not is_degraded(None)
        assert not is_degraded("NO_MEMBERS_YET")

    def test_counters_merge_and_export(self):
        first = RetryCounters(attempts=2, retries=1,
                              retries_by_operation={"PS_MSG": 1})
        second = RetryCounters(attempts=3, timeouts=1,
                               retries_by_operation={"PS_MSG": 2,
                                                     "PS_GETPROFILE": 1})
        first.merge(second)
        assert first.attempts == 5
        assert first.retries_by_operation == {"PS_MSG": 3,
                                              "PS_GETPROFILE": 1}
        snapshot = first.as_dict()
        assert snapshot["timeouts"] == 1
        # the export is a copy, not a live view
        snapshot["retries_by_operation"]["PS_MSG"] = 99
        assert first.retries_by_operation["PS_MSG"] == 3


# -- injector mechanics ----------------------------------------------------

def _one_link_bed(seed: int = 13) -> Testbed:
    bed = Testbed(seed=seed, technologies=("bluetooth",))
    bed.add_member("alice", ["x"])
    bed.add_member("bob", ["x"])
    bed.run(30.0)
    return bed


class TestFaultInjector:
    def test_install_uninstall(self):
        bed = _one_link_bed()
        injector = bed.enable_faults(FaultConfig())
        assert bed.medium.faults is injector
        injector.uninstall()
        assert bed.medium.faults is None
        bed.stop()

    def test_certain_connect_failure(self):
        bed = _one_link_bed()
        bed.enable_faults(FaultConfig(connect_failure_rate=1.0))
        alice = bed.devices["alice"]

        def attempt():
            yield from alice.library.connect("bob", "PeerHoodCommunity")

        with pytest.raises(InjectedFaultError):
            bed.execute(attempt())
        assert bed.faults.counters.connect_failures >= 1
        # the injected error is catchable as the organic one
        assert issubclass(InjectedFaultError, NotReachableError)
        bed.stop()

    def test_certain_drop_breaks_connection(self):
        bed = _one_link_bed()
        alice = bed.devices["alice"]

        def exchange():
            connection = yield from alice.library.connect(
                "bob", "PeerHoodCommunity")
            bed.enable_faults(FaultConfig(drop_rate=1.0))
            with pytest.raises(NotReachableError):
                connection.send(protocol.make_request(
                    protocol.PS_GETONLINEMEMBERLIST))
            assert connection.closed
            return True

        assert bed.execute(exchange())
        assert bed.faults.counters.drops == 1
        bed.stop()

    def test_corruption_is_typed_garbage(self):
        bed = _one_link_bed()
        injector = bed.enable_faults(FaultConfig(corruption_rate=1.0))
        garbage = injector.corrupt_payload({"op": "PS_MSG"})
        assert set(garbage) == {"x-corrupt"}
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(garbage)
        with pytest.raises(protocol.ProtocolError):
            protocol.response_status(garbage)
        bed.stop()

    def test_disabled_injector_is_clean(self):
        bed = _one_link_bed()
        injector = bed.enable_faults(FaultConfig(drop_rate=1.0,
                                                 corruption_rate=1.0))
        injector.enabled = False
        alice = bed.devices["alice"]

        def exchange():
            connection = yield from alice.library.connect(
                "bob", "PeerHoodCommunity")
            connection.send(protocol.make_request(
                protocol.PS_GETONLINEMEMBERLIST))
            reply = yield connection.recv()
            return reply

        reply = bed.execute(exchange())
        assert protocol.response_status(reply) in protocol.ALL_STATUSES
        assert injector.counters.total == 0
        bed.stop()

    def test_flap_takes_device_down_and_back(self):
        bed = _one_link_bed()
        injector = bed.enable_faults(FaultConfig(flap_down_s=5.0))
        assert injector.flap("bob")
        assert injector.flapping("bob")
        assert not injector.flap("bob")  # no double flap
        assert not bed.medium.reachable("alice", "bob", "bluetooth")
        bed.run(6.0)
        assert not injector.flapping("bob")
        assert bed.medium.reachable("alice", "bob", "bluetooth")
        assert injector.counters.flaps == 1
        assert injector.counters.flapped_devices == {"bob": 1}
        bed.stop()


# -- recv_with_timeout ----------------------------------------------------

class TestRecvWithTimeout:
    def test_times_out_when_peer_is_silent(self):
        bed = _one_link_bed()
        alice = bed.devices["alice"]
        bob = bed.devices["bob"]
        bob.stack.listen("mute", lambda connection: None)

        def exchange():
            connection = yield from alice.library.connect("bob", "mute")
            with pytest.raises(AttemptTimeoutError):
                yield from recv_with_timeout(bed.env, connection, 5.0)
            return bed.env.now

        bed.execute(exchange())
        bed.stop()

    def test_returns_payload_when_in_time(self):
        bed = _one_link_bed()
        alice = bed.devices["alice"]
        bob = bed.devices["bob"]

        def echo(connection):
            def serve():
                payload = yield connection.recv()
                connection.send(payload)
            bed.env.spawn(serve(), name="echo")

        bob.stack.listen("echo", echo)

        def exchange():
            connection = yield from alice.library.connect("bob", "echo")
            connection.send({"ping": 1})
            reply = yield from recv_with_timeout(bed.env, connection, 30.0)
            return reply

        assert bed.execute(exchange()) == {"ping": 1}
        bed.stop()


# -- the pinned regression -------------------------------------------------

class TestFlapLeavesNoOrphans:
    def test_flap_during_ps_getprofile_leaves_registry_clean(self):
        """Device flap under an open PS_GETPROFILE exchange.

        Once the dust settles, no stack may hold an open connection to
        the flapped device, every tracked connection must actually be
        open, and the flapped device must be fully re-discovered.
        """
        bed = Testbed(seed=31, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        bob = bed.add_member("bob", ["x"])
        carol = bed.add_member("carol", ["x"])
        bed.run(30.0)
        injector = bed.enable_faults(FaultConfig(flap_down_s=12.0))

        def flap_mid_exchange():
            # Let the broadcast open its connections and send, then
            # yank bob's radios while replies are in flight.
            bed.env.call_in(0.05, injector.flap, "bob")
            profile = yield from alice.app.view_member_profile("bob")
            return profile

        profile = bed.execute(flap_mid_exchange())
        # Typed outcome: the retry loop got it (carol still answers,
        # bob may even return within the retry window) or degraded.
        assert profile is None or isinstance(profile, dict) \
            or is_degraded(profile)

        # Flap window passes; discovery re-finds bob; queues drain.
        bed.run(120.0)
        for handle in bed.devices.values():
            stack = handle.stack
            for connection in stack.open_connections():
                assert not connection.closed, (
                    f"{handle.device_id} tracks a closed connection "
                    f"{connection!r}")
        # The daemons noticed the loss and dropped bob's stale halves.
        summaries = [bed.devices[name].daemon.stale_connections_dropped
                     for name in ("alice", "carol")]
        assert sum(summaries) >= 0  # counter exists and is consistent
        # Bob is back in everyone's neighbourhood and groups.
        for name in ("alice", "carol"):
            assert bed.devices[name].daemon.knows("bob")
            assert set(bed.members[name].app.group_members("x")) == {
                "alice", "bob", "carol"}
        bed.stop()

    def test_lost_device_connections_are_dropped(self):
        """drop_peer closes every half when discovery loses a device."""
        bed = Testbed(seed=33, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        bob = bed.add_member("bob", ["x"])
        bed.run(30.0)
        # Open a pooled connection, then walk bob out of range.
        bed.execute(alice.app.view_member_profile("bob"))
        alice_stack = bed.devices["alice"].stack
        assert alice_stack.open_connections("bob")
        from repro.mobility import Point
        bed.world.move_node("bob", Point(900.0, 900.0))
        bed.run(40.0)
        assert not bed.devices["alice"].daemon.knows("bob")
        assert alice_stack.open_connections("bob") == []
        assert bed.devices["alice"].daemon.stale_connections_dropped >= 1
        bed.stop()
