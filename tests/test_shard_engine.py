"""The sharded engine must be invisible in the results.

The contract under test: for any workload, a sharded run at any shard
count produces the *identical* device-event count and per-device
interaction log as :func:`repro.shard.runner.reference_run` — a
deliberately separate single-world code path with no partitioning,
windows or ghosts.  The oracle tests pin fixed workloads at several
shard counts (with ``verify_ghosts=True`` so any replica drift raises
instead of silently shifting a neighbour set); the Hypothesis property
randomises crowd shape, walker speed and window length; and the
adversarial case parks a device that teleports across a strip border
every single tick, the worst case for the migration/ghost machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mobility.geometry import Point, Rect
from repro.shard import (ShardWorkload, ShardedRunner, clustered_workload,
                         compare_results, crowd_workload,
                         interaction_digests, reference_run)
from repro.shard.devices import DeviceState, SeededWalk

#: Shard counts every oracle comparison covers: trivial, even splits
#: and a count that does not divide the bounds evenly.
SHARD_COUNTS = (1, 2, 4, 7)

#: Fixed oracle workload: small enough to run four times per test,
#: dense enough (50 m pitch vs 60 m radio) for real interactions, and
#: walker-heavy so devices actually cross strip borders.
ORACLE = crowd_workload(24, seed=7, sim_seconds=20.0, walker_fraction=0.5)


def run_sharded(workload: ShardWorkload, shards: int, *,
                processes: bool = False, partition: str = "strip",
                rebalance: bool = False) -> object:
    return ShardedRunner(workload, shards, processes=processes,
                         collect_logs=True, verify_ghosts=True,
                         partition=partition, rebalance=rebalance).run()


class TestLockstepOracle:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_equals_reference(self, shards):
        reference = reference_run(ORACLE)
        sharded = run_sharded(ORACLE, shards)
        problems = compare_results(reference, sharded,
                                   label_a="reference",
                                   label_b=f"shards{shards}")
        assert problems == []

    def test_oracle_workload_is_non_trivial(self):
        """Guard the guard: the oracle must exercise real interactions
        and real border traffic, or the equivalence checks above pass
        vacuously."""
        reference = reference_run(ORACLE)
        assert reference.events > 0
        assert reference.logs
        assert any(entries and entries[-1][1]
                   for entries in reference.logs.values())
        sharded = run_sharded(ORACLE, 4)
        assert sharded.ghost_peak > 0

    def test_event_totals_are_shard_count_invariant(self):
        totals = {shards: run_sharded(ORACLE, shards).events
                  for shards in SHARD_COUNTS}
        assert len(set(totals.values())) == 1, totals

    def test_digests_match_across_shard_counts(self):
        reference = interaction_digests(reference_run(ORACLE).logs)
        for shards in SHARD_COUNTS:
            assert interaction_digests(
                run_sharded(ORACLE, shards).logs) == reference


class TestProcessMode:
    def test_spawned_workers_match_reference(self):
        """The production scheduler (one OS process per shard) must
        produce the same bytes as the in-process one."""
        workload = crowd_workload(24, seed=13, sim_seconds=15.0,
                                  walker_fraction=0.5)
        reference = reference_run(workload)
        sharded = ShardedRunner(workload, 2, processes=True,
                                collect_logs=True).run()
        assert compare_results(reference, sharded, label_a="reference",
                               label_b="processes") == []


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(count=st.integers(min_value=4, max_value=20),
       seed=st.integers(min_value=0, max_value=2**32),
       walker_speed=st.floats(min_value=0.5, max_value=4.0),
       window=st.sampled_from([2.5, 5.0]),
       shards=st.sampled_from(SHARD_COUNTS))
def test_random_walks_property(count, seed, walker_speed, window, shards):
    """Random crowds with border-crossing walkers: any shard count
    reproduces the reference neighbour sets exactly."""
    workload = crowd_workload(count, seed=seed, sim_seconds=10.0,
                              walker_fraction=1.0,
                              walker_speed=walker_speed, window=window)
    reference = reference_run(workload)
    sharded = run_sharded(workload, shards)
    assert compare_results(reference, sharded, label_a="reference",
                           label_b=f"shards{shards}") == []


class BorderHopper:
    """Mobility model that teleports across a strip border every tick.

    Alternates between ``center - amplitude`` and ``center + amplitude``
    — with ``center`` on a shard border this forces an ownership
    re-evaluation at every window edge and keeps the device permanently
    inside two shards' halos.  State is one sign flag, so a pickled
    replica resumes the identical trajectory.
    """

    def __init__(self, center: float, y: float, amplitude: float) -> None:
        self.center = center
        self.y = y
        self.amplitude = amplitude
        self._sign = 1.0

    def step(self, position: Point, dt: float) -> Point:
        self._sign = -self._sign
        return Point(self.center + self._sign * self.amplitude, self.y)


@dataclass(frozen=True)
class HopperWorkload(ShardWorkload):
    """Adversarial workload: one border hopper plus fixed observers."""

    def build_devices(self) -> list[DeviceState]:
        border = self.bounds.min_x + self.bounds.width / 4.0  # 4-shard edge
        y = self.bounds.height / 2.0
        hopper = DeviceState(
            device_id="hopper", x=border - 5.0, y=y,
            model=BorderHopper(center=border, y=y, amplitude=5.0))
        observers = [
            DeviceState(device_id="obs_left", x=border - 30.0, y=y),
            DeviceState(device_id="obs_right", x=border + 30.0, y=y),
            DeviceState(device_id="obs_far", x=border + 150.0, y=y),
        ]
        walker = DeviceState(
            device_id="walker", x=border + 20.0, y=y - 20.0,
            model=SeededWalk(self.bounds, self.walker_speed, seed=99))
        return [hopper, *observers, walker]


#: walker_speed doubles as the halo's max-speed bound, so it must
#: cover the hopper's 10 m-per-1 s-tick teleport.
HOPPER = HopperWorkload(count=5, seed=3, sim_seconds=30.0,
                        bounds=Rect(0.0, 0.0, 400.0, 400.0),
                        walker_speed=12.0)


class TestBorderHopper:
    def test_oscillating_device_is_adversarial(self):
        """The scenario must actually hammer the border machinery."""
        sharded = run_sharded(HOPPER, 4)
        assert sharded.migrations > 0
        assert sharded.ghost_peak > 0
        # Both near observers keep seeing the hopper; the far one never does.
        logs = sharded.logs
        assert any("hopper" in entry[1] for entry in logs["obs_left"])
        assert any("hopper" in entry[1] for entry in logs["obs_right"])
        assert all("hopper" not in entry[1] for entry in logs["obs_far"])

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_hopper_equals_reference(self, shards):
        reference = reference_run(HOPPER)
        sharded = run_sharded(HOPPER, shards)
        assert compare_results(reference, sharded, label_a="reference",
                               label_b=f"shards{shards}") == []


# -- tile partitions and rebalancing ----------------------------------------

#: Clustered oracle: four hotspots on a "main street" so the tile
#: rebalancer actually fires (guarded below) while staying small enough
#: to run at several shard counts per test.  Non-zero drift exercises
#: the flash-crowd mobility (DriftWalk) through the ghost-exactness
#: machinery too.
CLUSTERED = clustered_workload(48, seed=13, sim_seconds=20.0, clusters=4,
                               center_spread=0.05, center_spread_y=0.3,
                               scan_interval=2.0, window=1.0,
                               drift_speed=1.0)


class TestTileOracle:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_tile_sharded_equals_reference(self, shards):
        reference = reference_run(ORACLE)
        sharded = run_sharded(ORACLE, shards, partition="tile")
        assert compare_results(reference, sharded, label_a="reference",
                               label_b=f"tile{shards}") == []

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_rebalancing_run_equals_reference(self, shards):
        """Live tile migrations mid-run must be invisible in the
        results — the map only decides *where* work happens."""
        reference = reference_run(CLUSTERED)
        sharded = run_sharded(CLUSTERED, shards, partition="tile",
                              rebalance=True)
        assert compare_results(reference, sharded, label_a="reference",
                               label_b=f"rebalance{shards}") == []

    def test_rebalancer_actually_fires(self):
        """Guard the guard: the clustered oracle must trigger real tile
        reassignments, or the equivalence above passes vacuously."""
        sharded = run_sharded(CLUSTERED, 4, partition="tile",
                              rebalance=True)
        assert sharded.rebalances > 0
        assert sharded.tiles_migrated > 0
        assert sharded.partition == "tile"
        assert sharded.tiles > 4

    def test_spawned_tile_workers_match_reference(self):
        reference = reference_run(CLUSTERED)
        sharded = ShardedRunner(CLUSTERED, 2, processes=True,
                                collect_logs=True, partition="tile",
                                rebalance=True).run()
        assert compare_results(reference, sharded, label_a="reference",
                               label_b="tile-processes") == []

    def test_rebalance_requires_tile_partition(self):
        with pytest.raises(ValueError):
            ShardedRunner(ORACLE, 2, rebalance=True)


class CornerHopper:
    """Mobility model that teleports across a four-tile corner.

    Alternates diagonally between ``(cx - a, cy - a)`` and
    ``(cx + a, cy + a)`` — with the centre on a tile-grid corner every
    tick crosses tile boundaries in *both* axes at once, the case strip
    partitions never face and the 2D ghost box must cover.
    """

    def __init__(self, cx: float, cy: float, amplitude: float) -> None:
        self.cx = cx
        self.cy = cy
        self.amplitude = amplitude
        self._sign = 1.0

    def step(self, position: Point, dt: float) -> Point:
        self._sign = -self._sign
        return Point(self.cx + self._sign * self.amplitude,
                     self.cy + self._sign * self.amplitude)


@dataclass(frozen=True)
class CornerWorkload(ShardWorkload):
    """Adversarial workload: a corner hopper plus quadrant observers."""

    def build_devices(self) -> list[DeviceState]:
        cx = self.bounds.min_x + self.bounds.width / 2.0
        cy = self.bounds.min_y + self.bounds.height / 2.0
        hopper = DeviceState(
            device_id="hopper", x=cx - 5.0, y=cy - 5.0,
            model=CornerHopper(cx=cx, cy=cy, amplitude=5.0))
        observers = [
            DeviceState(device_id="obs_sw", x=cx - 30.0, y=cy - 30.0),
            DeviceState(device_id="obs_ne", x=cx + 30.0, y=cy + 30.0),
            DeviceState(device_id="obs_far", x=cx + 150.0, y=cy + 150.0),
        ]
        walker = DeviceState(
            device_id="walker", x=cx + 20.0, y=cy - 20.0,
            model=SeededWalk(self.bounds, self.walker_speed, seed=99))
        return [hopper, *observers, walker]


#: Same speed bound as HOPPER: it must cover the diagonal teleport.
CORNER = CornerWorkload(count=5, seed=3, sim_seconds=30.0,
                        bounds=Rect(0.0, 0.0, 400.0, 400.0),
                        walker_speed=12.0)


class TestCornerHopper:
    def test_diagonal_crossings_are_adversarial(self):
        """The hopper must hammer tile borders diagonally and stay
        visible from both touching quadrants — never from afar."""
        sharded = run_sharded(CORNER, 4, partition="tile")
        assert sharded.migrations > 0
        assert sharded.ghost_peak > 0
        logs = sharded.logs
        assert any("hopper" in entry[1] for entry in logs["obs_sw"])
        assert any("hopper" in entry[1] for entry in logs["obs_ne"])
        assert all("hopper" not in entry[1] for entry in logs["obs_far"])

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_corner_hopper_equals_reference(self, shards):
        reference = reference_run(CORNER)
        sharded = run_sharded(CORNER, shards, partition="tile")
        assert compare_results(reference, sharded, label_a="reference",
                               label_b=f"corner{shards}") == []
