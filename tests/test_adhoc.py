"""Tests for the multi-hop ad-hoc overlay: graph, routing, relays and
k-hop group discovery."""

from __future__ import annotations

import pytest

from repro.adhoc import (
    NeighborGraph,
    OverlayGroupDiscovery,
    RelayNode,
    RouteDiscovery,
    open_multihop,
)
from repro.community import protocol
from repro.eval.testbed import Testbed
from repro.mobility import Point
from repro.radio.standards import BLUETOOTH


def _chain_bed(count: int = 4, spacing: float = 8.0):
    """A straight chain of community members, 8 m apart (BT range 10 m),
    so each device reaches only its chain neighbours."""
    bed = Testbed(seed=55, technologies=("bluetooth",))
    members = []
    for index in range(count):
        members.append(bed.add_member(
            chr(ord("a") + index), ["football"],
            position=Point(60.0 + index * spacing, 100.0)))
    relays = {member.device_id: RelayNode(bed.env, member.device.stack,
                                          BLUETOOTH)
              for member in members}
    graph = NeighborGraph(bed.medium, "bluetooth")
    return bed, members, relays, graph


class TestNeighborGraph:
    def test_chain_adjacency(self):
        bed, members, _, graph = _chain_bed()
        assert graph.neighbors("a") == ["b"]
        assert graph.neighbors("b") == ["a", "c"]
        bed.stop()

    def test_k_hop_neighbors_with_distances(self):
        bed, _, _, graph = _chain_bed()
        assert graph.k_hop_neighbors("a", 1) == {"b": 1}
        assert graph.k_hop_neighbors("a", 2) == {"b": 1, "c": 2}
        assert graph.k_hop_neighbors("a", 3) == {"b": 1, "c": 2, "d": 3}
        bed.stop()

    def test_k_validation(self):
        bed, _, _, graph = _chain_bed()
        with pytest.raises(ValueError):
            graph.k_hop_neighbors("a", 0)
        bed.stop()

    def test_shortest_path_and_partition(self):
        bed, _, _, graph = _chain_bed()
        assert graph.shortest_path("a", "d") == ["a", "b", "c", "d"]
        bed.world.move_node("c", Point(180.0, 180.0))  # break the chain
        assert graph.shortest_path("a", "d") is None
        bed.stop()

    def test_connected_component(self):
        bed, _, _, graph = _chain_bed()
        assert graph.is_connected_component(["a", "b", "c", "d"])
        bed.world.move_node("d", Point(180.0, 180.0))
        assert not graph.is_connected_component(["a", "d"])
        bed.stop()


class TestRouteDiscovery:
    def test_route_found_with_hop_cost(self):
        bed, _, _, graph = _chain_bed()
        router = RouteDiscovery(bed.env, graph, "a")
        start = bed.env.now
        record = bed.execute(router.find_route("d"))
        assert record.path == ("a", "b", "c", "d")
        assert record.hops == 3
        # RREQ out + RREP back: 6 hop-latencies of virtual time.
        assert bed.env.now - start == pytest.approx(
            router.hop_latency_s * 6.0, rel=1e-6)
        bed.stop()

    def test_cache_hit_skips_flood(self):
        bed, _, _, graph = _chain_bed()
        router = RouteDiscovery(bed.env, graph, "a")
        bed.execute(router.find_route("d"))
        assert router.floods == 1
        bed.execute(router.find_route("d"))
        assert router.floods == 1  # served from cache
        bed.stop()

    def test_cache_invalidated_by_mobility(self):
        bed, _, _, graph = _chain_bed()
        router = RouteDiscovery(bed.env, graph, "a")
        bed.execute(router.find_route("d"))
        bed.world.move_node("c", Point(180.0, 180.0))
        assert router.cached_route("d") is None
        bed.stop()

    def test_no_route_returns_none_after_ring_cost(self):
        bed, _, _, graph = _chain_bed()
        bed.world.move_node("d", Point(180.0, 180.0))
        router = RouteDiscovery(bed.env, graph, "a")
        start = bed.env.now
        record = bed.execute(router.find_route("d", max_hops=5))
        assert record is None
        assert bed.env.now > start  # the failed flood cost time
        bed.stop()

    def test_max_hops_limits_route(self):
        bed, _, _, graph = _chain_bed()
        router = RouteDiscovery(bed.env, graph, "a")
        record = bed.execute(router.find_route("d", max_hops=2))
        assert record is None
        bed.stop()


class TestRelayChannels:
    def test_two_hop_request_response(self):
        bed, members, _, graph = _chain_bed()
        bed.run(30.0)  # service discovery settles

        def probe():
            channel = yield from open_multihop(
                members[0].device.stack, BLUETOOTH,
                ["a", "b", "c"], "PeerHoodCommunity")
            channel.send(protocol.make_request(protocol.PS_GETINTERESTLIST))
            reply = yield channel.recv()
            channel.close()
            return reply

        reply = bed.execute(probe())
        assert protocol.response_status(reply) == protocol.STATUS_OK
        assert reply["member_id"] == "c"
        bed.stop()

    def test_three_hop_costs_more_than_one_hop(self):
        bed, members, _, _ = _chain_bed()
        bed.run(30.0)

        def timed_probe(path):
            def run():
                channel = yield from open_multihop(
                    members[0].device.stack, BLUETOOTH, path,
                    "PeerHoodCommunity")
                channel.send(protocol.make_request(
                    protocol.PS_GETINTERESTLIST))
                reply = yield channel.recv()
                channel.close()
                return reply

            start = bed.env.now
            bed.execute(run())
            return bed.env.now - start

        one_hop = timed_probe(["a", "b"])
        three_hop = timed_probe(["a", "b", "c", "d"])
        assert three_hop > one_hop * 2
        bed.stop()

    def test_relay_counts_forwarded_frames(self):
        bed, members, relays, _ = _chain_bed()
        bed.run(30.0)

        def probe():
            channel = yield from open_multihop(
                members[0].device.stack, BLUETOOTH,
                ["a", "b", "c"], "PeerHoodCommunity")
            channel.send(protocol.make_request(protocol.PS_GETINTERESTLIST))
            reply = yield channel.recv()
            channel.close()
            return reply

        bed.execute(probe())
        assert relays["b"].frames_forwarded >= 2  # request + reply
        assert relays["b"].channels_opened == 1
        bed.stop()

    def test_path_validation(self):
        bed, members, _, _ = _chain_bed()
        with pytest.raises(ValueError):
            bed.execute(open_multihop(members[0].device.stack, BLUETOOTH,
                                      ["a"], "x"))
        with pytest.raises(ValueError):
            bed.execute(open_multihop(members[0].device.stack, BLUETOOTH,
                                      ["b", "a"], "x"))
        bed.stop()


class TestOverlayGroupDiscovery:
    def _overlay_for(self, bed, member):
        graph = NeighborGraph(bed.medium, "bluetooth")
        return OverlayGroupDiscovery(bed.env, member.device.stack, graph,
                                     BLUETOOTH, member.app.store)

    def test_k1_matches_radio_range(self):
        bed, members, _, _ = _chain_bed()
        bed.run(30.0)
        overlay = self._overlay_for(bed, members[0])
        bed.execute(overlay.discover(k=1))
        assert overlay.members_of("football") == ["a", "b"]
        assert overlay.reach() == 1
        bed.stop()

    def test_k3_reaches_the_whole_chain(self):
        bed, members, _, _ = _chain_bed()
        bed.run(30.0)
        overlay = self._overlay_for(bed, members[0])
        probes = bed.execute(overlay.discover(k=3), timeout=600.0)
        assert overlay.members_of("football") == ["a", "b", "c", "d"]
        assert overlay.reach() == 3
        hops = {probe.device_id: probe.hops for probe in probes}
        assert hops == {"b": 1, "c": 2, "d": 3}
        bed.stop()

    def test_probe_latency_grows_with_hops(self):
        bed, members, _, _ = _chain_bed()
        bed.run(30.0)
        overlay = self._overlay_for(bed, members[0])
        probes = bed.execute(overlay.discover(k=3), timeout=600.0)
        by_device = {probe.device_id: probe.elapsed_s for probe in probes}
        assert by_device["b"] < by_device["c"] < by_device["d"]
        bed.stop()

    def test_logged_out_member_not_grouped(self):
        bed, members, _, _ = _chain_bed()
        members[2].app.logout()  # c goes offline
        bed.run(30.0)
        overlay = self._overlay_for(bed, members[0])
        bed.execute(overlay.discover(k=3), timeout=600.0)
        assert "c" not in overlay.members_of("football")
        bed.stop()

    def test_requires_login(self):
        bed, members, _, _ = _chain_bed()
        members[0].app.logout()
        overlay = self._overlay_for(bed, members[0])
        with pytest.raises(PermissionError):
            bed.execute(overlay.discover(k=1))
        bed.stop()
