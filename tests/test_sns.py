"""Tests for the centralized SNS baseline: database, server, devices,
human model, workflows and the Table 2 census."""

from __future__ import annotations

from random import Random

import pytest

from repro.sns import (
    CENSUS,
    FACEBOOK_2008,
    HI5_2008,
    HumanModel,
    NOKIA_N810,
    NOKIA_N95,
    SnsDatabase,
    SnsServer,
    SnsWorkflow,
    seed_database_from_census,
)
from repro.sns.census import census_row


class TestDatabase:
    def _database(self) -> SnsDatabase:
        database = SnsDatabase()
        database.register_user("u1", "User One", ["football"])
        database.register_user("u2", "User Two", ["music"])
        database.create_group("England Football")
        database.create_group("Football Fans")
        database.create_group("Knitting")
        return database

    def test_register_duplicate_rejected(self):
        database = self._database()
        with pytest.raises(ValueError):
            database.register_user("u1", "Again")

    def test_group_duplicate_rejected(self):
        database = self._database()
        with pytest.raises(ValueError):
            database.create_group("england football")

    def test_search_substring_case_insensitive(self):
        database = self._database()
        names = [group.name for group in database.search_groups("FOOTBALL")]
        assert set(names) == {"England Football", "Football Fans"}

    def test_search_orders_by_membership(self):
        database = self._database()
        database.join_group("Football Fans", "u1")
        names = [group.name for group in database.search_groups("football")]
        assert names[0] == "Football Fans"

    def test_join_requires_known_user(self):
        database = self._database()
        with pytest.raises(KeyError):
            database.join_group("Knitting", "ghost")

    def test_members_sorted(self):
        database = self._database()
        database.join_group("Knitting", "u2")
        database.join_group("Knitting", "u1")
        assert [user.user_id for user in database.members_of("Knitting")] == [
            "u1", "u2"]


class TestCensus:
    def test_census_matches_paper_table2(self):
        by_site = {row.site: row for row in CENSUS}
        assert by_site["MySpace"].registered_users == 217_000_000
        assert by_site["Facebook"].registered_users == 58_000_000
        assert by_site["Flickr"].registered_users == 4_000_000
        assert len(CENSUS) == 8

    def test_census_is_sorted_descending_like_the_paper(self):
        counts = [row.registered_users for row in CENSUS]
        assert counts == sorted(counts, reverse=True)

    def test_seeding_scales_population(self):
        database = SnsDatabase()
        row = census_row("Flickr")
        created = seed_database_from_census(database, row, Random(1),
                                            scale=100_000)
        assert created == row.registered_users // 100_000
        assert database.user_count == created
        assert database.group_count > 0

    def test_unknown_site_raises(self):
        with pytest.raises(KeyError):
            census_row("Orkut")


class TestDevicesAndHuman:
    def test_page_time_scales_with_size(self):
        small = NOKIA_N810.page_time(50.0, 0.3)
        large = NOKIA_N810.page_time(500.0, 0.3)
        assert large > small

    def test_cache_reduces_time(self):
        cold = NOKIA_N810.page_time(300.0, 0.3, cached=False)
        warm = NOKIA_N810.page_time(300.0, 0.3, cached=True)
        assert warm < cold

    def test_n95_slower_than_n810_on_same_page(self):
        assert (NOKIA_N95.page_time(300.0, 0.3)
                > NOKIA_N810.page_time(300.0, 0.3))

    def test_human_determinism(self):
        a = HumanModel(Random(5)).type_text("england football", 0.5)
        b = HumanModel(Random(5)).type_text("england football", 0.5)
        assert a == b

    def test_human_speed_multiplier(self):
        slow = HumanModel(Random(5), speed=2.0).think(2.0)
        fast = HumanModel(Random(5), speed=0.5).think(2.0)
        assert slow > fast

    def test_human_zero_jitter_is_exact(self):
        human = HumanModel(Random(1), jitter=0.0)
        assert human.scan_list(10, 0.5) == pytest.approx(5.0)

    def test_human_validation(self):
        with pytest.raises(ValueError):
            HumanModel(Random(1), speed=0.0)
        with pytest.raises(ValueError):
            HumanModel(Random(1), jitter=1.0)


def _server(site) -> SnsServer:
    database = SnsDatabase()
    seed_database_from_census(database, census_row("Flickr"), Random(3),
                              scale=100_000)
    database.create_group("England Football 2008")
    database.register_user("tester", "The Tester")
    return SnsServer(site, database)


class TestServerFlows:
    def test_search_pads_to_site_result_count(self):
        server = _server(FACEBOOK_2008)
        page = server.search("england football 2008")
        assert len(page.data) == FACEBOOK_2008.search_results
        assert page.data[0].name == "England Football 2008"

    def test_join_flow_adds_member_and_returns_pages(self):
        server = _server(HI5_2008)
        pages = server.join_flow("England Football 2008", "tester")
        assert len(pages) == HI5_2008.join_pages
        assert "tester" in server.database.group(
            "England Football 2008").members

    def test_members_page_windows(self):
        server = _server(FACEBOOK_2008)
        server.database.create_group("Fresh Group")
        for index in range(30):
            server.database.join_group("Fresh Group", f"user{index:06d}")
        page0 = server.members_page("Fresh Group", page=0)
        page1 = server.members_page("Fresh Group", page=1)
        assert len(page0.data) == FACEBOOK_2008.members_per_page
        assert len(page1.data) == 30 - FACEBOOK_2008.members_per_page

    def test_profile_page_caching_differs_by_site(self):
        assert _server(FACEBOOK_2008).profile_page("tester").cached
        assert not _server(HI5_2008).profile_page("tester").cached

    def test_pages_served_counted(self):
        server = _server(FACEBOOK_2008)
        server.home_page()
        server.search("x")
        assert server.pages_served == 2


class TestWorkflows:
    def test_full_task_set_is_positive_and_ordered(self):
        server = _server(FACEBOOK_2008)
        workflow = SnsWorkflow(server, NOKIA_N810, Random(7))
        times = workflow.run_table8_tasks("england football 2008",
                                          "England Football 2008", "tester")
        assert times.search_s > 0
        assert times.join_s > 0
        assert times.member_list_s > 0
        assert times.profile_s > 0
        assert times.total_s == pytest.approx(
            times.search_s + times.join_s + times.member_list_s
            + times.profile_s)

    def test_n95_total_exceeds_n810_total(self):
        def total(device):
            workflow = SnsWorkflow(_server(FACEBOOK_2008), device, Random(7))
            return workflow.run_table8_tasks("england football 2008",
                                             "England Football 2008",
                                             "tester").total_s

        assert total(NOKIA_N95) > total(NOKIA_N810)

    def test_mobile_site_is_faster_but_not_free(self):
        from repro.sns.sites import FACEBOOK_MOBILE_2008

        def total(site):
            workflow = SnsWorkflow(_server(site), NOKIA_N95, Random(9))
            return workflow.run_table8_tasks("england football 2008",
                                             "England Football 2008",
                                             "tester")

        full = total(FACEBOOK_2008)
        mobile = total(FACEBOOK_MOBILE_2008)
        assert mobile.total_s < full.total_s
        # The human costs (typing, scanning, join round trips) remain.
        assert mobile.search_s > 15.0
        assert mobile.join_s > 0.0

    def test_page_log_records_loads(self):
        workflow = SnsWorkflow(_server(FACEBOOK_2008), NOKIA_N810, Random(7))
        workflow.search_group("england football 2008")
        descriptions = [description for description, _ in workflow.page_log]
        assert descriptions[0] == "portal page"
        assert any("search results" in d for d in descriptions)
