"""End-to-end scenario tests crossing all subsystems: the paper's
motivating situations (§5.1) plus failure injection."""

from __future__ import annotations


from repro.community import protocol
from repro.eval.testbed import Testbed
from repro.mobility import BusRoute, LinearCrossing, Point, Rect
from repro.peerhood.seamless import SeamlessConnectivityManager


class TestUniversityScenario:
    """'Instant local communities like in university or pub' (§5.1)."""

    def test_crowded_room_forms_overlapping_groups(self):
        bed = Testbed(seed=101)
        interests = {
            "s0": ["football", "music"],
            "s1": ["football", "gaming"],
            "s2": ["music", "gaming"],
            "s3": ["football", "music", "gaming"],
            "s4": ["chess"],
        }
        members = {name: bed.add_member(name, wanted)
                   for name, wanted in interests.items()}
        bed.run(60.0)
        view = members["s3"].app
        assert view.group_members("football") == ["s0", "s1", "s3"]
        assert view.group_members("music") == ["s0", "s2", "s3"]
        assert view.group_members("gaming") == ["s1", "s2", "s3"]
        assert members["s4"].groups() == []  # chess is lonely
        bed.stop()

    def test_full_social_session(self):
        """Profile -> comment -> trust -> share -> message, end to end."""
        bed = Testbed(seed=103)
        alice = bed.add_member("alice", ["football"])
        bob = bed.add_member("bob", ["football"])
        bed.run(30.0)

        profile = bed.execute(alice.app.view_member_profile("bob"))
        assert profile["member_id"] == "bob"
        assert bed.execute(alice.app.comment_profile("bob", "hi bob"))
        bob.app.accept_trusted("alice")
        bob.app.share_file("notes.pdf", 80_000)
        files = bed.execute(alice.app.view_shared_content("bob"))
        assert [f["name"] for f in files] == ["notes.pdf"]
        status = bed.execute(alice.app.send_message("bob", "thanks",
                                                    "got the notes"))
        assert status == protocol.SUCCESSFULLY_WRITTEN
        # Bob's side saw everything land on his own device.
        assert bob.app.profile.comments[0].text == "hi bob"
        assert bob.app.profile.inbox[0].subject == "thanks"
        assert bob.app.profile.viewers[0].viewer == "alice"
        bed.stop()


class TestBusScenario:
    """'Mobile community like in bus or airplane while travelling' (§5.1):
    passengers move together, so their groups persist while the bus
    drives; a pedestrian left behind drops out."""

    def test_bus_community_persists_while_moving(self):
        bed = Testbed(seed=107, bounds=Rect(0, 0, 1000, 1000),
                      technologies=("bluetooth",))
        route = [Point(100, 100), Point(800, 100), Point(800, 800)]
        passengers = []
        for index in range(3):
            # One shared BusRoute per passenger with identical speed
            # keeps them rigidly co-located.
            passengers.append(bed.add_member(
                f"rider{index}", ["travel"],
                position=Point(100 + index * 2.0, 100),
                model=BusRoute(route, speed=8.0)))
        left_behind = bed.add_member("stayer", ["travel"],
                                     position=Point(100, 104))
        bed.run(45.0)  # groups form while the bus is near the stop... and
        assert "travel" in passengers[0].groups()
        bed.run(120.0)  # ...the bus has long driven away
        members = passengers[0].app.group_members("travel")
        assert set(members) >= {"rider0", "rider1", "rider2"}
        assert "stayer" not in members
        assert "travel" not in left_behind.groups() or \
            left_behind.app.group_members("travel") == []
        bed.stop()


class TestFailureInjection:
    def test_operation_during_peer_departure_skips_dead_server(self):
        bed = Testbed(seed=109, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        bed.add_member("bob", ["x"])
        walker = bed.add_member("walker", ["x"],
                                model=LinearCrossing(Point(103, 100),
                                                     Point(400, 100), 6.0))
        bed.world.move_node("walker", Point(103, 100))
        bed.run(25.0)
        # Walker is sprinting away; member list must still complete
        # using whoever stays reachable.
        members = bed.execute(alice.app.view_all_members(), timeout=120.0)
        ids = [m["member_id"] for m in members]
        assert "bob" in ids
        bed.stop()

    def test_server_logout_midway_yields_no_members(self):
        bed = Testbed(seed=113)
        alice = bed.add_member("alice", ["x"])
        bob = bed.add_member("bob", ["x"])
        bed.run(30.0)
        bob.app.logout()
        assert bed.execute(alice.app.view_member_profile("bob")) is None

    def test_radio_disabled_midway_breaks_then_recovers(self):
        bed = Testbed(seed=127, technologies=("bluetooth",))
        alice = bed.add_member("alice", ["x"])
        bed.add_member("bob", ["x"])
        bed.run(30.0)
        adapter = bed.medium.adapter("bob", "bluetooth")
        adapter.enabled = False
        bed.run(40.0)
        assert alice.app.group_members("x") in ([], ["alice"])
        adapter.enabled = True
        bed.run(40.0)
        assert alice.app.group_members("x") == ["alice", "bob"]
        bed.stop()


class TestSeamlessScenario:
    def test_community_connection_survives_bt_loss_via_wlan(self):
        """A pooled community connection handed over mid-session."""
        bed = Testbed(seed=131)  # bluetooth + wlan
        alice = bed.add_member("alice", ["x"])
        bob = bed.add_member("bob", ["x"])
        bed.run(30.0)
        manager = SeamlessConnectivityManager(alice.device.daemon)
        bed.execute(alice.app.view_all_members())
        connection = alice.app.pool.connection_to("bob")
        assert connection is not None
        assert connection.technology.name == "bluetooth"
        manager.supervise(connection)
        # Bob strolls out of Bluetooth range but stays within WLAN.
        bed.world.node("bob").model = LinearCrossing(
            bed.world.node("bob").position, Point(140, 100), 2.0)
        bed.run(40.0)
        assert connection.technology.name == "wlan"
        assert not connection.closed
        # The pooled connection still serves operations.
        members = bed.execute(alice.app.view_all_members())
        assert "bob" in [m["member_id"] for m in members]
        bed.stop()


class TestMultiTechnologyNeighborhood:
    def test_gprs_only_peer_reachable_through_gateway(self):
        bed = Testbed(seed=137, technologies=("bluetooth", "gprs"),
                      bounds=Rect(0, 0, 2000, 2000))
        near = bed.add_member("near", ["x"], position=Point(100, 100))
        far = bed.add_member("far", ["x"], position=Point(1900, 1900))
        bed.run(40.0)
        # Far is beyond Bluetooth reach; only the GPRS proxy connects
        # them, so the group still forms.
        assert near.app.group_members("x") == ["far", "near"]
        assert bed.gateway.relayed_messages > 0
        bed.stop()

    def test_member_list_works_across_mixed_technologies(self):
        bed = Testbed(seed=139, technologies=("bluetooth", "gprs"),
                      bounds=Rect(0, 0, 2000, 2000))
        near = bed.add_member("near", ["x"], position=Point(100, 100))
        bed.add_member("close", ["y"], position=Point(104, 100))
        bed.add_member("far", ["z"], position=Point(1900, 1900))
        bed.run(40.0)
        members = bed.execute(near.app.view_all_members(), timeout=120.0)
        assert [m["member_id"] for m in members] == ["close", "far"]
        bed.stop()
