"""Partition geometry and the rebalancer — the sharded engine's map.

Ownership must be a total, pure function of position (every point maps
to exactly one shard, out-of-bounds clamps to the edge regions) and the
ghost routing set must cover every shard a device could interact with
during one window — for tiles that includes diagonal corner crossings.
These are the invariants the equivalence gate leans on, so they get
direct unit and property coverage here, alongside the greedy
rebalancer's contract: deterministic, terminating, load-conserving and
never making the spread worse.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.geometry import Rect
from repro.shard.balance import imbalance, rebalance_map, shard_loads
from repro.shard.partition import (MAX_TILES, PartitionSpec, StripPartition,
                                   TilePartition, default_tile_map,
                                   halo_width, plan_tile_grid, spec_for)

BOUNDS = Rect(0.0, 0.0, 400.0, 400.0)


class TestHaloWidth:
    def test_lookahead_bound(self):
        # R + 2 v W: both endpoints of a pair can close the gap.
        assert halo_width(60.0, 1.5, 5.0) == 60.0 + 2.0 * 1.5 * 5.0

    def test_stationary_crowd_needs_only_radio_range(self):
        assert halo_width(60.0, 0.0, 5.0) == 60.0

    @pytest.mark.parametrize(("radio", "speed", "window"), [
        (0.0, 1.0, 5.0), (-1.0, 1.0, 5.0),
        (60.0, -0.1, 5.0),
        (60.0, 1.0, 0.0), (60.0, 1.0, -2.0),
    ])
    def test_invalid_parameters_rejected(self, radio, speed, window):
        with pytest.raises(ValueError):
            halo_width(radio, speed, window)


class TestOwnership:
    def test_interior_points(self):
        partition = StripPartition(BOUNDS, 4)
        assert partition.owner_of(0.0) == 0
        assert partition.owner_of(99.9) == 0
        assert partition.owner_of(100.0) == 1
        assert partition.owner_of(399.9) == 3

    def test_right_edge_belongs_to_last_strip(self):
        partition = StripPartition(BOUNDS, 4)
        assert partition.owner_of(400.0) == 3

    def test_out_of_bounds_clamps_to_edge_strips(self):
        partition = StripPartition(BOUNDS, 4)
        assert partition.owner_of(-5.0) == 0
        assert partition.owner_of(1e9) == 3

    def test_single_shard_owns_everything(self):
        partition = StripPartition(BOUNDS, 1)
        assert partition.owner_of(-1.0) == 0
        assert partition.owner_of(200.0) == 0
        assert partition.owner_of(401.0) == 0

    def test_offset_bounds(self):
        partition = StripPartition(Rect(-100.0, 0.0, 100.0, 50.0), 2)
        assert partition.owner_of(-100.0) == 0
        assert partition.owner_of(-0.1) == 0
        assert partition.owner_of(0.0) == 1

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            StripPartition(BOUNDS, 0)
        with pytest.raises(ValueError):
            StripPartition(BOUNDS, -3)

    @given(x=st.floats(min_value=-50.0, max_value=450.0,
                       allow_nan=False, allow_infinity=False),
           shards=st.integers(min_value=1, max_value=9))
    def test_ownership_is_total(self, x, shards):
        partition = StripPartition(BOUNDS, shards)
        assert 0 <= partition.owner_of(x) < shards


class TestStripInterval:
    def test_intervals_tile_the_bounds(self):
        partition = StripPartition(BOUNDS, 4)
        edges = [partition.strip_interval(i) for i in range(4)]
        assert edges[0][0] == BOUNDS.min_x
        assert edges[-1][1] == BOUNDS.max_x
        for left, right in zip(edges, edges[1:]):
            assert left[1] == right[0]

    def test_out_of_range_shard_id_rejected(self):
        partition = StripPartition(BOUNDS, 4)
        with pytest.raises(ValueError):
            partition.strip_interval(4)
        with pytest.raises(ValueError):
            partition.strip_interval(-1)


class TestShardsWithin:
    def test_interior_device_far_from_borders_stays_home(self):
        partition = StripPartition(BOUNDS, 4)
        assert list(partition.shards_within(50.0, 20.0)) == [0]

    def test_border_device_covers_both_neighbours(self):
        partition = StripPartition(BOUNDS, 4)
        assert list(partition.shards_within(100.0, 20.0)) == [0, 1]

    def test_halo_wider_than_strip_spans_several_shards(self):
        partition = StripPartition(BOUNDS, 8)  # 50 m strips
        assert list(partition.shards_within(200.0, 120.0)) == [1, 2, 3, 4, 5, 6]

    def test_negative_halo_rejected(self):
        partition = StripPartition(BOUNDS, 4)
        with pytest.raises(ValueError):
            partition.shards_within(50.0, -1.0)

    @given(x=st.floats(min_value=0.0, max_value=400.0,
                       allow_nan=False, allow_infinity=False),
           halo=st.floats(min_value=0.0, max_value=200.0,
                          allow_nan=False, allow_infinity=False),
           shards=st.integers(min_value=1, max_value=9))
    def test_routing_set_always_contains_the_owner(self, x, halo, shards):
        partition = StripPartition(BOUNDS, shards)
        assert partition.owner_of(x) in partition.shards_within(x, halo)


# -- tile partitions --------------------------------------------------------

grids = st.tuples(st.integers(min_value=1, max_value=6),
                  st.integers(min_value=1, max_value=6))
coords = st.floats(min_value=-50.0, max_value=450.0,
                   allow_nan=False, allow_infinity=False)


def _random_tile_partition(tiles: tuple[int, int], shards: int,
                           seed: int) -> TilePartition:
    """A tile partition whose map is scrambled (but valid) — the
    properties must hold for *any* map, not just the balanced default,
    because the rebalancer produces arbitrary assignments."""
    count = tiles[0] * tiles[1]
    tile_map = tuple((tile * (seed % 7 + 1) + seed) % shards
                     for tile in range(count))
    return TilePartition(BOUNDS, shards, tiles, tile_map)


class TestTileOwnership:
    def test_row_major_indexing(self):
        partition = TilePartition(BOUNDS, 4, (4, 4))
        assert partition.tile_index(50.0, 50.0) == 0
        assert partition.tile_index(150.0, 50.0) == 1
        assert partition.tile_index(50.0, 150.0) == 4
        assert partition.tile_index(399.0, 399.0) == 15

    def test_out_of_bounds_clamps_to_edge_tiles(self):
        partition = TilePartition(BOUNDS, 4, (4, 4))
        assert partition.tile_index(-10.0, -10.0) == 0
        assert partition.tile_index(1e9, 1e9) == 15

    def test_tile_bounds_contains_interior_points(self):
        partition = TilePartition(BOUNDS, 2, (4, 4))
        for x, y in [(10.0, 10.0), (250.0, 130.0), (399.9, 399.9)]:
            rect = partition.tile_bounds(partition.tile_index(x, y))
            assert rect.min_x <= x <= rect.max_x
            assert rect.min_y <= y <= rect.max_y

    def test_bad_maps_rejected(self):
        with pytest.raises(ValueError):
            TilePartition(BOUNDS, 2, (2, 2), (0, 1, 0))  # wrong length
        with pytest.raises(ValueError):
            TilePartition(BOUNDS, 2, (2, 2), (0, 1, 0, 2))  # shard 2 of 2
        with pytest.raises(ValueError):
            TilePartition(BOUNDS, 2, (0, 2))

    @given(x=coords, y=coords, tiles=grids,
           shards=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=999))
    def test_exactly_one_owner_everywhere(self, x, y, tiles, shards, seed):
        partition = _random_tile_partition(tiles, shards, seed)
        tile = partition.tile_index(x, y)
        assert 0 <= tile < tiles[0] * tiles[1]
        assert partition.owner_at(x, y) == partition.tile_map[tile]
        assert 0 <= partition.owner_at(x, y) < shards


class TestTileAdjacency:
    def test_interior_tile_has_eight_neighbors(self):
        partition = TilePartition(BOUNDS, 1, (4, 4))
        assert len(partition.tile_neighbors(5)) == 8

    def test_corner_tile_has_three_neighbors(self):
        partition = TilePartition(BOUNDS, 1, (4, 4))
        assert partition.tile_neighbors(0) == (1, 4, 5)

    @given(tiles=grids)
    def test_adjacency_is_symmetric(self, tiles):
        partition = TilePartition(BOUNDS, 1, tiles)
        count = tiles[0] * tiles[1]
        for tile in range(count):
            for neighbor in partition.tile_neighbors(tile):
                assert tile in partition.tile_neighbors(neighbor)


class TestTileGhosts:
    def test_four_corner_crossing_routes_to_all_owners(self):
        """A device on a four-tile corner must ghost to all four owning
        shards — the diagonal case a strip partition never has."""
        partition = TilePartition(BOUNDS, 4, (2, 2), (0, 1, 2, 3))
        assert partition.ghost_shards(200.0, 200.0, 5.0) == (0, 1, 2, 3)

    def test_interior_device_ghosts_only_to_owner(self):
        partition = TilePartition(BOUNDS, 4, (2, 2), (0, 1, 2, 3))
        assert partition.ghost_shards(100.0, 100.0, 5.0) == (0,)

    def test_negative_halo_rejected(self):
        partition = TilePartition(BOUNDS, 2, (2, 2))
        with pytest.raises(ValueError):
            partition.ghost_shards(10.0, 10.0, -1.0)

    @given(x=coords, y=coords, tiles=grids,
           halo=st.floats(min_value=0.0, max_value=150.0,
                          allow_nan=False, allow_infinity=False),
           shards=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=999))
    def test_ghost_set_contains_owner_and_is_sorted(self, x, y, tiles,
                                                    halo, shards, seed):
        partition = _random_tile_partition(tiles, shards, seed)
        ghosts = partition.ghost_shards(x, y, halo)
        assert partition.owner_at(x, y) in ghosts
        assert list(ghosts) == sorted(set(ghosts))

    @given(x=coords, y=coords, tiles=grids,
           halo=st.floats(min_value=0.0, max_value=150.0,
                          allow_nan=False, allow_infinity=False),
           dx=st.floats(min_value=-1.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False),
           dy=st.floats(min_value=-1.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False),
           shards=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=999))
    def test_ghost_set_covers_every_reachable_owner(self, x, y, tiles, halo,
                                                    dx, dy, shards, seed):
        """Brute-force coverage: the owner of *any* position inside the
        halo box (diagonals included) appears in the ghost set — the
        invariant the window-equivalence proof leans on."""
        partition = _random_tile_partition(tiles, shards, seed)
        ghosts = partition.ghost_shards(x, y, halo)
        assert partition.owner_at(x + dx * halo, y + dy * halo) in ghosts


class TestTileMapsAndPlanning:
    @given(tiles=st.integers(min_value=1, max_value=200),
           shards=st.integers(min_value=1, max_value=16))
    def test_default_map_is_balanced_and_contiguous(self, tiles, shards):
        tile_map = default_tile_map(tiles, shards)
        counts = [tile_map.count(shard) for shard in range(shards)]
        busy = [count for count in counts if count]
        assert max(busy) - min(busy) <= 1
        assert list(tile_map) == sorted(tile_map)  # contiguous blocks

    @given(shards=st.integers(min_value=1, max_value=16),
           halo=st.floats(min_value=10.0, max_value=400.0,
                          allow_nan=False, allow_infinity=False))
    def test_planned_tiles_respect_the_halo_floor(self, shards, halo):
        tiles_x, tiles_y = plan_tile_grid(BOUNDS, shards, halo)
        assert 1 <= tiles_x * tiles_y <= MAX_TILES
        assert BOUNDS.width / tiles_x >= min(halo, BOUNDS.width)
        assert BOUNDS.height / tiles_y >= min(halo, BOUNDS.height)

    def test_spec_roundtrip(self):
        spec = spec_for("tile", BOUNDS, 4, 70.0)
        partition = spec.build(BOUNDS, 4)
        assert isinstance(partition, TilePartition)
        assert isinstance(spec_for("strip", BOUNDS, 4, 70.0).build(BOUNDS, 4),
                          StripPartition)
        with pytest.raises(ValueError):
            spec_for("hex", BOUNDS, 4, 70.0)
        with pytest.raises(ValueError):
            PartitionSpec(kind="tile")  # tile grid is mandatory
        with pytest.raises(ValueError):
            PartitionSpec(kind="strip", tiles=(2, 2))


# -- the greedy rebalancer --------------------------------------------------

load_cases = st.integers(min_value=2, max_value=60).flatmap(
    lambda tiles: st.tuples(
        st.just(tiles),
        st.integers(min_value=1, max_value=8),
        st.dictionaries(st.integers(min_value=0, max_value=tiles - 1),
                        st.integers(min_value=0, max_value=100),
                        max_size=tiles)))


class TestRebalancer:
    def test_hot_strip_is_spread_out(self):
        # All the load on shard 0's tiles: the greedy must hand some off.
        tile_map = default_tile_map(8, 2)
        loads = {0: 10, 1: 10, 2: 10, 3: 10}
        new_map, moves = rebalance_map(tile_map, loads, 2)
        assert moves > 0
        assert imbalance(shard_loads(new_map, loads, 2)) < \
            imbalance(shard_loads(tile_map, loads, 2))

    def test_single_hot_tile_cannot_be_split(self):
        # One tile heavier than everything else: no whole-tile move
        # helps, so the map must come back unchanged rather than churn.
        tile_map = default_tile_map(4, 2)
        new_map, moves = rebalance_map(tile_map, {0: 1000, 3: 1}, 2)
        assert moves == 0
        assert new_map == tile_map

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            rebalance_map((0, 1), {0: 5}, 2, threshold=0.5)

    @settings(max_examples=60)
    @given(case=load_cases)
    def test_rebalance_is_deterministic(self, case):
        tiles, shards, loads = case
        tile_map = default_tile_map(tiles, shards)
        assert rebalance_map(tile_map, loads, shards) == \
            rebalance_map(tile_map, loads, shards)

    @settings(max_examples=60)
    @given(case=load_cases)
    def test_rebalance_never_worsens_the_spread(self, case):
        tiles, shards, loads = case
        tile_map = default_tile_map(tiles, shards)
        new_map, moves = rebalance_map(tile_map, loads, shards)
        assert len(new_map) == tiles
        assert all(0 <= owner < shards for owner in new_map)
        before = shard_loads(tile_map, loads, shards)
        after = shard_loads(new_map, loads, shards)
        assert sum(after) == sum(before)  # load is conserved
        assert imbalance(after) <= imbalance(before)
        if moves == 0:
            assert new_map == tile_map
