"""Strip partition and halo arithmetic — the sharded engine's geometry.

Ownership must be a total, pure function of x (every position maps to
exactly one shard, out-of-bounds clamps to the edge strips) and the
ghost routing set must cover every shard a device could interact with
during one window.  These are the invariants the equivalence gate
leans on, so they get direct unit coverage here.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mobility.geometry import Rect
from repro.shard.partition import StripPartition, halo_width

BOUNDS = Rect(0.0, 0.0, 400.0, 400.0)


class TestHaloWidth:
    def test_lookahead_bound(self):
        # R + 2 v W: both endpoints of a pair can close the gap.
        assert halo_width(60.0, 1.5, 5.0) == 60.0 + 2.0 * 1.5 * 5.0

    def test_stationary_crowd_needs_only_radio_range(self):
        assert halo_width(60.0, 0.0, 5.0) == 60.0

    @pytest.mark.parametrize(("radio", "speed", "window"), [
        (0.0, 1.0, 5.0), (-1.0, 1.0, 5.0),
        (60.0, -0.1, 5.0),
        (60.0, 1.0, 0.0), (60.0, 1.0, -2.0),
    ])
    def test_invalid_parameters_rejected(self, radio, speed, window):
        with pytest.raises(ValueError):
            halo_width(radio, speed, window)


class TestOwnership:
    def test_interior_points(self):
        partition = StripPartition(BOUNDS, 4)
        assert partition.owner_of(0.0) == 0
        assert partition.owner_of(99.9) == 0
        assert partition.owner_of(100.0) == 1
        assert partition.owner_of(399.9) == 3

    def test_right_edge_belongs_to_last_strip(self):
        partition = StripPartition(BOUNDS, 4)
        assert partition.owner_of(400.0) == 3

    def test_out_of_bounds_clamps_to_edge_strips(self):
        partition = StripPartition(BOUNDS, 4)
        assert partition.owner_of(-5.0) == 0
        assert partition.owner_of(1e9) == 3

    def test_single_shard_owns_everything(self):
        partition = StripPartition(BOUNDS, 1)
        assert partition.owner_of(-1.0) == 0
        assert partition.owner_of(200.0) == 0
        assert partition.owner_of(401.0) == 0

    def test_offset_bounds(self):
        partition = StripPartition(Rect(-100.0, 0.0, 100.0, 50.0), 2)
        assert partition.owner_of(-100.0) == 0
        assert partition.owner_of(-0.1) == 0
        assert partition.owner_of(0.0) == 1

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            StripPartition(BOUNDS, 0)
        with pytest.raises(ValueError):
            StripPartition(BOUNDS, -3)

    @given(x=st.floats(min_value=-50.0, max_value=450.0,
                       allow_nan=False, allow_infinity=False),
           shards=st.integers(min_value=1, max_value=9))
    def test_ownership_is_total(self, x, shards):
        partition = StripPartition(BOUNDS, shards)
        assert 0 <= partition.owner_of(x) < shards


class TestStripInterval:
    def test_intervals_tile_the_bounds(self):
        partition = StripPartition(BOUNDS, 4)
        edges = [partition.strip_interval(i) for i in range(4)]
        assert edges[0][0] == BOUNDS.min_x
        assert edges[-1][1] == BOUNDS.max_x
        for left, right in zip(edges, edges[1:]):
            assert left[1] == right[0]

    def test_out_of_range_shard_id_rejected(self):
        partition = StripPartition(BOUNDS, 4)
        with pytest.raises(ValueError):
            partition.strip_interval(4)
        with pytest.raises(ValueError):
            partition.strip_interval(-1)


class TestShardsWithin:
    def test_interior_device_far_from_borders_stays_home(self):
        partition = StripPartition(BOUNDS, 4)
        assert list(partition.shards_within(50.0, 20.0)) == [0]

    def test_border_device_covers_both_neighbours(self):
        partition = StripPartition(BOUNDS, 4)
        assert list(partition.shards_within(100.0, 20.0)) == [0, 1]

    def test_halo_wider_than_strip_spans_several_shards(self):
        partition = StripPartition(BOUNDS, 8)  # 50 m strips
        assert list(partition.shards_within(200.0, 120.0)) == [1, 2, 3, 4, 5, 6]

    def test_negative_halo_rejected(self):
        partition = StripPartition(BOUNDS, 4)
        with pytest.raises(ValueError):
            partition.shards_within(50.0, -1.0)

    @given(x=st.floats(min_value=0.0, max_value=400.0,
                       allow_nan=False, allow_infinity=False),
           halo=st.floats(min_value=0.0, max_value=200.0,
                          allow_nan=False, allow_infinity=False),
           shards=st.integers(min_value=1, max_value=9))
    def test_routing_set_always_contains_the_owner(self, x, halo, shards):
        partition = StripPartition(BOUNDS, shards)
        assert partition.owner_of(x) in partition.shards_within(x, halo)
