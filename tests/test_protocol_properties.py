"""Property-based tests for the PS_* wire protocol.

Invariant under test: whatever arrives off the wire — a well-formed
frame, a truncated one, a bit-flipped one, or arbitrary JSON — the
protocol layer either yields a valid ``(op, params)`` / status, or
raises a *typed* error (:class:`FrameError` /
:class:`~repro.community.protocol.ProtocolError`).  Never an
``IndexError``/``KeyError``/``struct.error`` escaping from the guts.
"""

from __future__ import annotations

import contextlib

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.community import protocol
from repro.net.messages import FrameError, deserialize, serialize

# -- strategies ----------------------------------------------------------

operations = st.sampled_from(sorted(protocol.OPERATIONS))

field_values = st.one_of(
    st.text(max_size=40),
    st.integers(min_value=-2**31, max_value=2**31),
    st.lists(st.text(max_size=10), max_size=4),
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
json_payloads = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5)),
    max_leaves=20)


@st.composite
def requests(draw):
    """A well-formed request for a random operation."""
    op = draw(operations)
    params = {name: draw(field_values)
              for name in protocol.OPERATIONS[op]}
    return protocol.make_request(op, **params)


@st.composite
def responses(draw):
    """A well-formed response with random extra data fields."""
    status = draw(st.sampled_from(protocol.ALL_STATUSES))
    data = draw(st.dictionaries(
        st.text(min_size=1, max_size=10).filter(lambda k: k != "status"),
        field_values, max_size=4))
    return protocol.make_response(status, **data)


# -- round trips ----------------------------------------------------------

class TestRoundTrips:
    @given(request=requests())
    def test_request_survives_the_wire(self, request):
        received = deserialize(serialize(request))
        op, params = protocol.parse_request(received)
        assert op == request["op"]
        assert params == {key: value for key, value in request.items()
                          if key != "op"}

    @given(response=responses())
    def test_response_survives_the_wire(self, response):
        received = deserialize(serialize(response))
        assert protocol.response_status(received) == response["status"]
        assert received == response


# -- malformed input ------------------------------------------------------

class TestMalformedInput:
    @given(request=requests(), cut=st.integers(min_value=0, max_value=200))
    def test_truncated_frame_raises_frame_error(self, request, cut):
        frame = serialize(request)
        assume(cut < len(frame))
        with pytest.raises(FrameError):
            deserialize(frame[:cut])

    @given(request=requests(), position=st.integers(min_value=0),
           delta=st.integers(min_value=1, max_value=255))
    def test_bitflip_yields_only_typed_errors(self, request, position, delta):
        frame = bytearray(serialize(request))
        position %= len(frame)
        frame[position] = (frame[position] + delta) % 256
        try:
            payload = deserialize(bytes(frame))
        except FrameError:
            return  # typed: the framing layer caught it
        # typed: the protocol layer caught it
        with contextlib.suppress(protocol.ProtocolError):
            protocol.parse_request(payload)

    @given(junk=st.binary(max_size=64))
    def test_random_bytes_raise_frame_error_or_decode(self, junk):
        with contextlib.suppress(FrameError):
            deserialize(junk)

    @given(payload=json_payloads)
    def test_parse_request_never_raises_untyped(self, payload):
        with contextlib.suppress(protocol.ProtocolError):
            protocol.parse_request(payload)

    @given(payload=json_payloads)
    def test_response_status_never_raises_untyped(self, payload):
        try:
            status = protocol.response_status(payload)
        except protocol.ProtocolError:
            pass
        else:
            assert status in protocol.ALL_STATUSES

    @given(op=operations,
           dropped=st.data())
    def test_missing_required_field_is_typed(self, op, dropped):
        required = protocol.OPERATIONS[op]
        assume(required)
        missing = dropped.draw(st.sampled_from(sorted(required)))
        payload = {"op": op}
        payload.update({name: "v" for name in required if name != missing})
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(payload)

    def test_corruption_marker_fails_both_validators(self):
        """The injector's garbage shape is rejected on both sides."""
        garbage = {"x-corrupt": "deadbeefdeadbeef"}
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(garbage)
        with pytest.raises(protocol.ProtocolError):
            protocol.response_status(garbage)
