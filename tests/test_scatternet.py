"""Tests (incl. property-based) for Bluetooth scatternet formation."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.bluetooth import Piconet
from repro.radio.scatternet import PiconetPlan, form_scatternet


def _chain(n: int) -> nx.Graph:
    graph = nx.Graph()
    names = [f"n{i:02d}" for i in range(n)]
    graph.add_nodes_from(names)
    graph.add_edges_from(zip(names, names[1:], strict=False))
    return graph


class TestFormation:
    def test_single_node_is_its_own_piconet(self):
        graph = nx.Graph()
        graph.add_node("solo")
        net = form_scatternet(graph)
        assert net.covered_devices() == {"solo"}
        assert net.bridges == set()

    def test_small_room_fits_one_piconet(self):
        graph = nx.complete_graph(5)
        graph = nx.relabel_nodes(graph, {i: f"d{i}" for i in range(5)})
        net = form_scatternet(graph)
        assert len(net.piconets) == 1
        assert len(net.piconets[0].slaves) == 4

    def test_nine_device_clique_needs_two_piconets(self):
        graph = nx.complete_graph(9)
        graph = nx.relabel_nodes(graph, {i: f"d{i}" for i in range(9)})
        net = form_scatternet(graph)
        assert len(net.piconets) >= 2
        for plan in net.piconets:
            assert len(plan.slaves) <= Piconet.MAX_ACTIVE_SLAVES
        assert net.preserves_connectivity(graph)
        assert net.bridges  # the piconets must share bridge nodes

    def test_chain_preserves_connectivity(self):
        graph = _chain(12)
        net = form_scatternet(graph)
        assert net.covered_devices() == set(graph.nodes)
        assert net.preserves_connectivity(graph)

    def test_disconnected_components_stay_separate(self):
        graph = _chain(4)
        graph.add_edge("x0", "x1")
        net = form_scatternet(graph)
        overlay = net.overlay_graph()
        assert not nx.has_path(overlay, "n00", "x0")

    def test_plan_materialises_to_live_piconet(self):
        plan = PiconetPlan(master="m", slaves={"a", "b"})
        piconet = plan.as_piconet()
        assert piconet.slaves == frozenset({"a", "b"})

    def test_max_slaves_validation(self):
        with pytest.raises(ValueError):
            form_scatternet(nx.Graph(), max_slaves=0)

    def test_piconets_of_bridge_node(self):
        net = form_scatternet(_chain(12))
        for bridge in net.bridges:
            assert len(net.piconets_of(bridge)) >= 2


@st.composite
def connectivity_graphs(draw):
    """Random geometric-flavoured graphs up to 24 nodes."""
    n = draw(st.integers(min_value=1, max_value=24))
    names = [f"v{i:02d}" for i in range(n)]
    graph = nx.Graph()
    graph.add_nodes_from(names)
    if n > 1:
        possible = [(a, b) for i, a in enumerate(names)
                    for b in names[i + 1:]]
        edges = draw(st.lists(st.sampled_from(possible),
                              max_size=min(len(possible), 60)))
        graph.add_edges_from(edges)
    return graph


class TestScatternetProperties:
    @settings(deadline=None, max_examples=60)
    @given(graph=connectivity_graphs())
    def test_invariants(self, graph):
        net = form_scatternet(graph)
        # 1. Full coverage.
        assert net.covered_devices() == set(graph.nodes)
        # 2. Piconet size limit.
        for plan in net.piconets:
            assert len(plan.slaves) <= Piconet.MAX_ACTIVE_SLAVES
            assert plan.master not in plan.slaves
        # 3. Every master masters exactly one piconet.
        masters = [plan.master for plan in net.piconets]
        assert len(masters) == len(set(masters))
        # 4. Master-slave edges only exist where radio edges exist
        #    (isolated self-piconets aside).
        for plan in net.piconets:
            for slave in plan.slaves:
                assert graph.has_edge(plan.master, slave)
        # 5. Radio connectivity is preserved by the overlay.
        assert net.preserves_connectivity(graph)
        # 6. Bridges are exactly multi-piconet members.
        for bridge in net.bridges:
            assert len(net.piconets_of(bridge)) >= 2

    @settings(deadline=None, max_examples=30)
    @given(graph=connectivity_graphs())
    def test_formation_is_deterministic(self, graph):
        first = form_scatternet(graph)
        second = form_scatternet(graph)
        assert [(p.master, sorted(p.slaves)) for p in first.piconets] == \
            [(p.master, sorted(p.slaves)) for p in second.piconets]
