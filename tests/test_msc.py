"""Tests for MSC recording and rendering, including regeneration of the
paper's Figures 11-17 message sequences from live runs."""

from __future__ import annotations

import pytest

from repro.eval.mscfigures import FIGURE_TITLES, record_figure, render_figure
from repro.msc import MscRecorder, render_msc


class TestRecorder:
    def test_participants_in_first_appearance_order(self):
        recorder = MscRecorder()
        recorder.message(0.0, "client", "server1", "REQ")
        recorder.message(1.0, "server1", "client", "OK")
        recorder.message(2.0, "client", "server2", "REQ")
        assert recorder.participants() == ["client", "server1", "server2"]

    def test_messages_between(self):
        recorder = MscRecorder()
        recorder.message(0.0, "a", "b", "x")
        recorder.message(1.0, "b", "a", "y")
        recorder.message(2.0, "a", "c", "z")
        assert [e.label for e in recorder.messages_between("a", "b")] == [
            "x", "y"]

    def test_labels_filter_by_kind(self):
        recorder = MscRecorder()
        recorder.message(0.0, "a", "b", "msg")
        recorder.action(1.0, "b", "act")
        recorder.note(2.0, "b", "n")
        assert recorder.labels("message") == ["msg"]
        assert recorder.labels("action") == ["act"]
        assert recorder.labels() == ["msg", "act", "n"]

    def test_disabled_recorder_records_nothing(self):
        recorder = MscRecorder()
        recorder.enabled = False
        recorder.message(0.0, "a", "b", "x")
        assert recorder.events == []

    def test_subchart_filters_participants(self):
        recorder = MscRecorder()
        recorder.message(0.0, "a", "b", "keep")
        recorder.message(1.0, "a", "c", "drop")
        view = recorder.subchart(["a", "b"])
        assert view.labels() == ["keep"]

    def test_clear(self):
        recorder = MscRecorder()
        recorder.message(0.0, "a", "b", "x")
        recorder.clear()
        assert recorder.events == []


class TestRenderer:
    def test_empty_chart(self):
        assert "empty MSC" in render_msc(MscRecorder())

    def test_arrows_point_the_right_way(self):
        recorder = MscRecorder()
        recorder.message(0.0, "left", "right", "GO")
        recorder.message(1.0, "right", "left", "BACK")
        art = render_msc(recorder)
        lines = art.splitlines()
        go_line = next(line for line in lines if "GO" in line)
        back_line = next(line for line in lines if "BACK" in line)
        assert ">" in go_line and "<" not in go_line
        assert "<" in back_line and ">" not in back_line

    def test_labels_and_title_present(self):
        recorder = MscRecorder()
        recorder.message(0.0, "client", "server", "PS_GETPROFILE")
        recorder.action(0.5, "server", "writes visitor")
        art = render_msc(recorder, title="Figure X")
        assert "Figure X" in art
        assert "PS_GETPROFILE" in art
        assert "[writes visitor]" in art


@pytest.mark.parametrize("figure", sorted(FIGURE_TITLES))
def test_figures_render_with_title(figure):
    art = render_figure(figure, seed=1)
    assert FIGURE_TITLES[figure].split(":")[0] in art


class TestFigureSequences:
    """The recorded exchanges must match the paper's MSCs."""

    def test_figure11_member_list_broadcast(self):
        recorder, result = record_figure(11, seed=2)
        to_bob = [e.label for e in recorder.messages_between(
            "client:alice", "server:bob")]
        to_carol = [e.label for e in recorder.messages_between(
            "client:alice", "server:carol")]
        assert to_bob == ["PS_GETONLINEMEMBERLIST", "OK"]
        assert to_carol == ["PS_GETONLINEMEMBERLIST", "OK"]
        assert [m["member_id"] for m in result] == ["bob", "carol"]

    def test_figure12_interest_list(self):
        recorder, result = record_figure(12, seed=2)
        assert "PS_GETINTERESTLIST" in recorder.labels("message")
        assert set(result) == {"football", "music", "movies"}

    def test_figure13_profile_desired_vs_other_server(self):
        recorder, result = record_figure(13, seed=2)
        bob_labels = [e.label for e in recorder.messages_between(
            "client:alice", "server:bob")]
        carol_labels = [e.label for e in recorder.messages_between(
            "client:alice", "server:carol")]
        assert bob_labels == ["PS_GETPROFILE", "OK"]
        assert carol_labels == ["PS_GETPROFILE", "NO_MEMBERS_YET"]
        assert "writes profile visitor" in recorder.labels("action")
        assert result["member_id"] == "bob"

    def test_figure14_comment_written_only_on_desired_server(self):
        recorder, result = record_figure(14, seed=2)
        bob_labels = [e.label for e in recorder.messages_between(
            "client:alice", "server:bob")]
        assert bob_labels == ["PS_ADDPROFILECOMMENT", "SUCCESSFULLY_WRITTEN"]
        assert "writes comment to profile file" in recorder.labels("action")
        assert result is True

    def test_figure15_trusted_friends(self):
        recorder, result = record_figure(15, seed=2)
        bob_labels = [e.label for e in recorder.messages_between(
            "client:alice", "server:bob")]
        assert bob_labels == ["PS_GETTRUSTEDFRIEND", "OK"]
        assert result == ["alice"]

    def test_figure16_two_phase_trusted_content(self):
        recorder, result = record_figure(16, seed=2)
        bob_labels = [e.label for e in recorder.messages_between(
            "client:alice", "server:bob")]
        assert bob_labels == ["PS_CHECKTRUSTED", "OK",
                              "PS_GETSHAREDCONTENT", "OK"]
        assert {entry["name"] for entry in result} == {
            "match_highlights.mp4", "lineup.txt"}

    def test_figure17_message_written_to_inbox(self):
        recorder, result = record_figure(17, seed=2)
        bob_labels = [e.label for e in recorder.messages_between(
            "client:alice", "server:bob")]
        assert bob_labels == ["PS_MSG", "SUCCESSFULLY_WRITTEN"]
        assert "writes mail to inbox file" in recorder.labels("action")
        assert result == "SUCCESSFULLY_WRITTEN"

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            record_figure(99)
