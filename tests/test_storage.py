"""Tests for file-backed profile persistence."""

from __future__ import annotations

import json

import pytest

from repro.community.profile import MailMessage, ProfileStore
from repro.community.storage import (
    load_store,
    profile_from_dict,
    profile_to_dict,
    save_store,
)


def _rich_store() -> ProfileStore:
    store = ProfileStore()
    profile = store.create_profile("alice", "alice", "secret", "Alice",
                                   ["football", "music"])
    profile.record_comment("bob", "hello", 12.5)
    profile.record_view("carol", 13.0)
    profile.add_trusted("bob")
    profile.share_file("mix.mp3", 9001)
    profile.deliver_mail(MailMessage("bob", "alice", "hi", "body", 14.0))
    profile.sent.append(MailMessage("alice", "bob", "re: hi", "reply", 15.0))
    store.create_profile("alice-work", "work", "pw2", "Alice (work)",
                         ["networking"])
    return store


class TestSerialization:
    def test_profile_round_trip_is_lossless(self):
        original = _rich_store().login("alice", "secret")
        restored = profile_from_dict(profile_to_dict(original))
        assert restored.member_id == original.member_id
        assert restored.password == original.password
        assert restored.interests.as_list() == original.interests.as_list()
        assert restored.comments == original.comments
        assert restored.viewers == original.viewers
        assert restored.trusted == original.trusted
        assert restored.shared_files == original.shared_files
        assert restored.inbox == original.inbox
        assert restored.sent == original.sent

    def test_version_checked(self):
        data = profile_to_dict(_rich_store().login("alice", "secret"))
        data["version"] = 99
        with pytest.raises(ValueError):
            profile_from_dict(data)

    def test_dict_is_json_serialisable(self):
        data = profile_to_dict(_rich_store().login("alice", "secret"))
        assert json.loads(json.dumps(data)) == data


class TestStorePersistence:
    def test_save_and_load_store(self, tmp_path):
        store = _rich_store()
        written = save_store(store, tmp_path)
        assert len(written) == 2
        assert all(path.exists() for path in written)

        restored = load_store(tmp_path)
        assert len(restored) == 2
        profile = restored.login("alice", "secret")
        assert profile.trusts("bob")
        assert profile.inbox[0].subject == "hi"

    def test_active_login_not_persisted(self, tmp_path):
        store = _rich_store()
        store.login("alice", "secret")
        save_store(store, tmp_path)
        restored = load_store(tmp_path)
        assert restored.active is None  # reboot lands on the login screen

    def test_load_empty_directory(self, tmp_path):
        restored = load_store(tmp_path)
        assert len(restored) == 0

    def test_save_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "profiles"
        save_store(_rich_store(), target)
        assert target.is_dir()

    def test_reboot_cycle_preserves_community_state(self, tmp_path):
        """Simulated device reboot: save, reload, state intact."""
        store = _rich_store()
        alice = store.login("alice", "secret")
        alice.record_comment("dave", "before reboot", 20.0)
        save_store(store, tmp_path)

        rebooted = load_store(tmp_path)
        profile = rebooted.login("alice", "secret")
        assert [c.text for c in profile.comments] == ["hello",
                                                      "before reboot"]
