"""Unit tests for technologies, standards, the medium, BT and GPRS."""

from __future__ import annotations

import pytest

from repro.mobility import Point
from repro.radio import (
    BLUETOOTH,
    BluetoothAdapter,
    GPRS,
    GprsGateway,
    Medium,
    Piconet,
    PiconetFullError,
    Technology,
    WLAN,
    all_technologies,
    wlan_standards_table,
)


class TestTechnology:
    def test_transfer_time_includes_latency_and_serialisation(self):
        tech = Technology("t", 10.0, 1000.0, 0.5, 0.0, 0.0)
        # 125 bytes = 1000 bits = 1 s at 1000 bps, plus 0.5 s latency.
        assert tech.transfer_time(125) == pytest.approx(1.5)

    def test_transfer_time_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            BLUETOOTH.transfer_time(-1)

    def test_in_range(self):
        assert BLUETOOTH.in_range(9.9)
        assert not BLUETOOTH.in_range(10.1)

    def test_wide_area_always_in_range(self):
        assert GPRS.in_range(1e9)

    def test_link_quality_monotone_decreasing(self):
        qualities = [BLUETOOTH.link_quality(d) for d in (0.0, 3.0, 7.0, 9.9)]
        assert qualities == sorted(qualities, reverse=True)
        assert BLUETOOTH.link_quality(0.0) == 1.0
        assert BLUETOOTH.link_quality(15.0) == 0.0

    def test_wide_area_quality_is_one(self):
        assert GPRS.link_quality(12345.0) == 1.0

    def test_transfer_cost(self):
        assert GPRS.transfer_cost(1_000_000) == pytest.approx(GPRS.cost_per_mb)
        assert BLUETOOTH.transfer_cost(1_000_000) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Technology("bad", -1.0, 1000.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Technology("bad", 10.0, 0.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Technology("bad", 10.0, 10.0, -0.1, 0.0, 0.0)


class TestStandards:
    def test_table1_has_five_rows_in_paper_order(self):
        rows = wlan_standards_table()
        assert [row.standard for row in rows] == [
            "IEEE 802.11", "IEEE 802.11a", "IEEE 802.11b",
            "IEEE 802.11g", "IEEE 802.16/a"]

    def test_table1_rates_match_paper(self):
        by_name = {row.standard: row for row in wlan_standards_table()}
        assert by_name["IEEE 802.11"].max_rate_mbps == 2.0
        assert by_name["IEEE 802.11a"].max_rate_mbps == 54.0
        assert by_name["IEEE 802.11b"].max_rate_mbps == 11.0
        assert by_name["IEEE 802.11g"].max_rate_mbps == 54.0

    def test_wimax_uses_des3_aes(self):
        wimax = wlan_standards_table()[-1]
        assert wimax.security == ("DES3", "AES")

    def test_all_technologies_registry(self):
        techs = all_technologies()
        assert {"bluetooth", "wlan", "gprs", "irda", "zigbee",
                "rfid"} <= set(techs)
        assert techs["gprs"].needs_gateway
        assert not techs["bluetooth"].needs_gateway

    def test_bluetooth_range_is_10m_class(self):
        assert BLUETOOTH.range_m == 10.0

    def test_gprs_rate_within_spec_envelope(self):
        # The paper cites 9.6-171 kbps for GPRS.
        assert 9_600 <= GPRS.bandwidth_bps <= 171_000

    def test_irda_shorter_range_than_bluetooth(self):
        techs = all_technologies()
        assert techs["irda"].range_m < BLUETOOTH.range_m


class TestMedium:
    def test_reachable_within_range(self, world, medium):
        world.add_node("a", Point(0, 0))
        world.add_node("b", Point(5, 0))
        medium.attach("a", BLUETOOTH)
        medium.attach("b", BLUETOOTH)
        assert medium.reachable("a", "b", "bluetooth")

    def test_not_reachable_beyond_range(self, world, medium):
        world.add_node("a", Point(0, 0))
        world.add_node("b", Point(50, 0))
        medium.attach("a", BLUETOOTH)
        medium.attach("b", BLUETOOTH)
        assert not medium.reachable("a", "b", "bluetooth")
        medium.attach("a", WLAN)
        medium.attach("b", WLAN)
        assert medium.reachable("a", "b", "wlan")

    def test_missing_adapter_means_unreachable(self, world, medium):
        world.add_node("a", Point(0, 0))
        world.add_node("b", Point(1, 0))
        medium.attach("a", BLUETOOTH)
        assert not medium.reachable("a", "b", "bluetooth")

    def test_disabled_adapter_unreachable(self, world, medium):
        world.add_node("a", Point(0, 0))
        world.add_node("b", Point(1, 0))
        medium.attach("a", BLUETOOTH)
        adapter_b = medium.attach("b", BLUETOOTH)
        adapter_b.enabled = False
        assert not medium.reachable("a", "b", "bluetooth")

    def test_self_not_reachable(self, world, medium):
        world.add_node("a", Point(0, 0))
        medium.attach("a", BLUETOOTH)
        assert not medium.reachable("a", "a", "bluetooth")

    def test_duplicate_attach_rejected(self, world, medium):
        world.add_node("a", Point(0, 0))
        medium.attach("a", BLUETOOTH)
        with pytest.raises(ValueError):
            medium.attach("a", BLUETOOTH)

    def test_detach_removes_adapter(self, world, medium):
        world.add_node("a", Point(0, 0))
        medium.attach("a", BLUETOOTH)
        medium.detach("a", "bluetooth")
        assert medium.adapter("a", "bluetooth") is None

    def test_gprs_needs_gateway(self, world, medium):
        world.add_node("a", Point(0, 0))
        world.add_node("b", Point(190, 190))
        medium.attach("a", GPRS)
        medium.attach("b", GPRS)
        assert not medium.reachable("a", "b", "gprs")
        medium.register_gateway("gprs")
        assert medium.reachable("a", "b", "gprs")

    def test_neighbors_sorted_and_range_limited(self, world, medium):
        world.add_node("center", Point(100, 100))
        for name, dx in (("zeta", 3.0), ("alpha", 5.0), ("far", 80.0)):
            world.add_node(name, Point(100 + dx, 100))
            medium.attach(name, BLUETOOTH)
        medium.attach("center", BLUETOOTH)
        assert medium.neighbors("center", "bluetooth") == ["alpha", "zeta"]

    def test_link_quality_zero_when_unreachable(self, world, medium):
        world.add_node("a", Point(0, 0))
        world.add_node("b", Point(100, 100))
        medium.attach("a", BLUETOOTH)
        medium.attach("b", BLUETOOTH)
        assert medium.link_quality("a", "b", "bluetooth") == 0.0

    def test_record_transfer_accumulates_cost(self, world, medium):
        world.add_node("a", Point(0, 0))
        adapter = medium.attach("a", GPRS)
        medium.record_transfer("a", "gprs", 500_000)
        medium.record_transfer("a", "gprs", 500_000)
        assert adapter.bytes_sent == 1_000_000
        assert adapter.cost_incurred == pytest.approx(GPRS.cost_per_mb)

    def test_adapters_of(self, world, medium):
        world.add_node("a", Point(0, 0))
        medium.attach("a", BLUETOOTH)
        medium.attach("a", WLAN)
        assert {adapter.technology.name
                for adapter in medium.adapters_of("a")} == {"bluetooth", "wlan"}


class TestBluetooth:
    def test_piconet_limits_to_seven_slaves(self):
        piconet = Piconet("master")
        for index in range(7):
            piconet.add_slave(f"slave{index}")
        with pytest.raises(PiconetFullError):
            piconet.add_slave("one-too-many")

    def test_piconet_re_add_is_idempotent(self):
        piconet = Piconet("master")
        piconet.add_slave("s")
        piconet.add_slave("s")
        assert len(piconet) == 1

    def test_piconet_release_frees_slot(self):
        piconet = Piconet("master")
        for index in range(7):
            piconet.add_slave(f"slave{index}")
        piconet.remove_slave("slave0")
        piconet.add_slave("new")  # no raise

    def test_master_cannot_be_own_slave(self):
        with pytest.raises(ValueError):
            Piconet("m").add_slave("m")

    def test_inquiry_grows_with_responders(self, env):
        adapter = BluetoothAdapter("a", env.random.stream("bt"))
        quiet = adapter.inquiry_duration(0)
        crowded = adapter.inquiry_duration(10)
        assert crowded > quiet
        assert quiet >= BLUETOOTH.discovery_time_s

    def test_inquiry_negative_responders_rejected(self, env):
        adapter = BluetoothAdapter("a", env.random.stream("bt"))
        with pytest.raises(ValueError):
            adapter.inquiry_duration(-1)

    def test_page_duration_at_least_setup(self, env):
        adapter = BluetoothAdapter("a", env.random.stream("bt"))
        assert adapter.page_duration() >= BLUETOOTH.setup_time_s


class TestGprsGateway:
    def test_register_and_lookup(self):
        gateway = GprsGateway()
        gateway.register("a")
        gateway.register("b")
        gateway.register("c")
        assert gateway.lookup("a") == ["b", "c"]

    def test_deregister(self):
        gateway = GprsGateway()
        gateway.register("a")
        gateway.deregister("a")
        assert gateway.registered == frozenset()

    def test_relay_time_meters_traffic(self):
        gateway = GprsGateway()
        before = gateway.relay_time(1000)
        assert before > 0
        assert gateway.relayed_bytes == 1000
        assert gateway.relayed_messages == 1

    def test_relay_negative_rejected(self):
        with pytest.raises(ValueError):
            GprsGateway().relay_time(-5)

    def test_total_cost_counts_both_directions(self):
        gateway = GprsGateway()
        gateway.relay_time(500_000)
        assert gateway.total_cost() == pytest.approx(
            GPRS.transfer_cost(1_000_000))


class TestMediumCaching:
    """The medium memoizes distances, reachability and neighbour
    listings per topology epoch; these are the regression tests that
    every cache invalidates on the event that makes it stale."""

    @pytest.fixture
    def pair(self, world, medium):
        world.add_node("a", Point(0.0, 0.0))
        world.add_node("b", Point(5.0, 0.0))
        medium.attach("a", BLUETOOTH)
        medium.attach("b", BLUETOOTH)
        return world, medium

    def test_reachable_survives_repeat_queries(self, pair):
        world, medium = pair
        assert medium.reachable("a", "b", "bluetooth")
        assert medium.reachable("a", "b", "bluetooth")  # cached path

    def test_distance_cache_invalidated_by_movement(self, pair):
        world, medium = pair
        assert medium.reachable("a", "b", "bluetooth")
        # Walk b out of Bluetooth range: the memoized distance (and the
        # reachability verdict built on it) must not survive the move.
        world.move_node("b", Point(150.0, 0.0))
        assert not medium.reachable("a", "b", "bluetooth")
        world.move_node("b", Point(3.0, 0.0))
        assert medium.reachable("a", "b", "bluetooth")

    def test_neighbors_cache_invalidated_by_movement(self, pair):
        world, medium = pair
        assert medium.neighbors("a", "bluetooth") == ["b"]
        world.move_node("b", Point(150.0, 0.0))
        assert medium.neighbors("a", "bluetooth") == []

    def test_caches_invalidated_by_adapter_toggle(self, pair):
        world, medium = pair
        assert medium.neighbors("a", "bluetooth") == ["b"]
        # Plain attribute assignment is the API faults.py and the BT
        # plugin use; the notifying setter must drop topology caches.
        medium.adapter("b", "bluetooth").enabled = False
        assert not medium.reachable("a", "b", "bluetooth")
        assert medium.neighbors("a", "bluetooth") == []
        medium.adapter("b", "bluetooth").enabled = True
        assert medium.neighbors("a", "bluetooth") == ["b"]

    def test_caches_invalidated_by_attach_detach(self, world, medium):
        world.add_node("a", Point(0.0, 0.0))
        world.add_node("b", Point(5.0, 0.0))
        medium.attach("a", BLUETOOTH)
        assert medium.neighbors("a", "bluetooth") == []
        medium.attach("b", BLUETOOTH)
        assert medium.neighbors("a", "bluetooth") == ["b"]
        medium.detach("b", "bluetooth")
        assert medium.neighbors("a", "bluetooth") == []

    def test_neighbors_returns_a_fresh_list(self, pair):
        world, medium = pair
        listing = medium.neighbors("a", "bluetooth")
        listing.append("intruder")
        assert medium.neighbors("a", "bluetooth") == ["b"]

    def test_link_quality_tracks_movement(self, pair):
        world, medium = pair
        near = medium.link_quality("a", "b", "bluetooth")
        world.move_node("b", Point(9.0, 0.0))
        far = medium.link_quality("a", "b", "bluetooth")
        assert 0.0 < far < near
