"""Tests for interests, semantics, profiles and the protocol module."""

from __future__ import annotations

import pytest

from repro.community import protocol
from repro.community.interests import InterestSet, normalize_interest
from repro.community.profile import Profile, ProfileStore, SharedFile
from repro.community.semantics import ExactMatcher, SemanticMatcher


class TestNormalization:
    def test_lowercase_and_trim(self):
        assert normalize_interest("  England  Football ") == "england football"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_interest("   ")

    def test_idempotent(self):
        once = normalize_interest("Ice  Hockey")
        assert normalize_interest(once) == once


class TestInterestSet:
    def test_preserves_insertion_order(self):
        interests = InterestSet(["music", "football", "art"])
        assert interests.as_list() == ["music", "football", "art"]

    def test_deduplicates_lexically(self):
        interests = InterestSet(["Football", "football ", "FOOTBALL"])
        assert interests.as_list() == ["football"]

    def test_contains_is_normalised(self):
        interests = InterestSet(["football"])
        assert "FootBall" in interests
        assert "" not in interests

    def test_remove(self):
        interests = InterestSet(["a", "b"])
        interests.remove("A")
        assert interests.as_list() == ["b"]
        with pytest.raises(KeyError):
            interests.remove("a")

    def test_matches_exact_only(self):
        ours = InterestSet(["biking", "music"])
        theirs = InterestSet(["cycling", "music"])
        assert ours.matches(theirs) == ["music"]

    def test_len(self):
        assert len(InterestSet(["a", "b", "a"])) == 2


class TestSemanticMatcher:
    def test_untaught_terms_differ(self):
        matcher = SemanticMatcher()
        assert not matcher.same("biking", "cycling")

    def test_teach_merges(self):
        matcher = SemanticMatcher()
        matcher.teach("biking", "cycling")
        assert matcher.same("biking", "cycling")
        assert matcher.canonical("cycling") == "biking"

    def test_canonical_is_lexicographic_min_regardless_of_order(self):
        forward = SemanticMatcher()
        forward.teach("cycling", "biking")
        backward = SemanticMatcher()
        backward.teach("biking", "cycling")
        assert (forward.canonical("cycling")
                == backward.canonical("cycling") == "biking")

    def test_transitive_classes(self):
        matcher = SemanticMatcher()
        matcher.teach("biking", "cycling")
        matcher.teach("cycling", "riding bicycle")
        assert matcher.same("biking", "riding bicycle")
        assert matcher.synonyms_of("riding bicycle") == [
            "biking", "cycling", "riding bicycle"]

    def test_seeded_synonym_groups(self):
        matcher = SemanticMatcher([["soccer", "football"],
                                   ["films", "movies"]])
        assert matcher.same("soccer", "football")
        assert matcher.same("films", "movies")
        assert not matcher.same("soccer", "movies")
        assert matcher.class_count() == 2

    def test_teach_same_class_is_noop(self):
        matcher = SemanticMatcher()
        matcher.teach("a", "b")
        matcher.teach("b", "a")
        assert matcher.same("a", "b")

    def test_exact_matcher_is_identity(self):
        matcher = ExactMatcher()
        assert matcher.canonical("Football ") == "football"
        assert matcher.same("football", "FOOTBALL")
        assert not matcher.same("biking", "cycling")


class TestProfile:
    def _profile(self) -> Profile:
        return Profile("alice", "alice", "pw", "Alice",
                       ["football", "music"])

    def test_interest_management(self):
        profile = self._profile()
        profile.add_interest("Movies")
        assert "movies" in profile.interests
        profile.remove_interest("movies")
        assert "movies" not in profile.interests

    def test_trust_cycle(self):
        profile = self._profile()
        profile.add_trusted("bob")
        assert profile.trusts("bob")
        profile.remove_trusted("bob")
        assert not profile.trusts("bob")

    def test_cannot_trust_self(self):
        with pytest.raises(ValueError):
            self._profile().add_trusted("alice")

    def test_share_and_unshare(self):
        profile = self._profile()
        profile.share_file("a.mp3", 1000)
        assert "a.mp3" in profile.shared_files
        profile.unshare_file("a.mp3")
        assert not profile.shared_files

    def test_shared_file_size_validated(self):
        with pytest.raises(ValueError):
            SharedFile("x", -1)

    def test_records(self):
        profile = self._profile()
        profile.record_comment("bob", "hi", 1.0)
        profile.record_view("carol", 2.0)
        assert profile.comments[0].author == "bob"
        assert profile.viewers[0].viewer == "carol"

    def test_public_view_shape(self):
        view = self._profile().public_view()
        assert view["member_id"] == "alice"
        assert view["interests"] == ["football", "music"]
        assert "password" not in view


class TestProfileStore:
    def test_login_logout(self):
        store = ProfileStore()
        store.create_profile("alice", "alice", "pw")
        assert store.active is None
        profile = store.login("alice", "pw")
        assert store.active is profile
        store.logout()
        assert store.active is None

    def test_bad_credentials_rejected(self):
        store = ProfileStore()
        store.create_profile("alice", "alice", "pw")
        with pytest.raises(PermissionError):
            store.login("alice", "wrong")
        with pytest.raises(PermissionError):
            store.login("ghost", "pw")

    def test_multiple_profiles_per_device(self):
        store = ProfileStore()
        store.create_profile("a", "work", "1")
        store.create_profile("b", "home", "2")
        assert len(store) == 2
        store.login("home", "2")
        assert store.active.member_id == "b"

    def test_duplicate_username_rejected(self):
        store = ProfileStore()
        store.create_profile("a", "alice", "1")
        with pytest.raises(ValueError):
            store.create_profile("b", "alice", "2")


class TestProtocol:
    def test_all_table6_operations_present(self):
        for op in ("PS_GETONLINEMEMBERLIST", "PS_GETINTERESTLIST",
                   "PS_GETINTERESTEDMEMBERLIST", "PS_GETPROFILE",
                   "PS_ADDPROFILECOMMENT", "PS_CHECKMEMBERID", "PS_MSG",
                   "PS_SHAREDCONTENT"):
            assert op in protocol.OPERATIONS

    def test_msc_only_operations_present(self):
        for op in ("PS_GETTRUSTEDFRIEND", "PS_CHECKTRUSTED",
                   "PS_GETSHAREDCONTENT"):
            assert op in protocol.OPERATIONS

    def test_make_request_validates_fields(self):
        request = protocol.make_request(protocol.PS_GETPROFILE,
                                        member_id="bob", requester="alice")
        assert request["op"] == protocol.PS_GETPROFILE
        with pytest.raises(protocol.ProtocolError):
            protocol.make_request(protocol.PS_GETPROFILE, member_id="bob")
        with pytest.raises(protocol.ProtocolError):
            protocol.make_request(protocol.PS_GETPROFILE, member_id="b",
                                  requester="a", extra="nope")
        with pytest.raises(protocol.ProtocolError):
            protocol.make_request("PS_NOT_A_THING")

    def test_parse_request_round_trip(self):
        request = protocol.make_request(protocol.PS_MSG, receiver="b",
                                        sender="a", subject="s", body="t")
        op, params = protocol.parse_request(request)
        assert op == protocol.PS_MSG
        assert params == {"receiver": "b", "sender": "a",
                          "subject": "s", "body": "t"}

    def test_parse_request_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request("not a dict")
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request({"no_op": True})
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request({"op": "PS_GETPROFILE"})

    def test_response_status_validation(self):
        response = protocol.make_response(protocol.NO_MEMBERS_YET)
        assert protocol.response_status(response) == protocol.NO_MEMBERS_YET
        with pytest.raises(protocol.ProtocolError):
            protocol.make_response("MYSTERY_STATUS")
        with pytest.raises(protocol.ProtocolError):
            protocol.response_status({"status": "MYSTERY_STATUS"})
        with pytest.raises(protocol.ProtocolError):
            protocol.response_status([])

    def test_paper_spelling_of_unsuccessfull(self):
        # The thesis spells it "UNSUCCESSFULL" (Figure 17); the wire
        # constant keeps that spelling for fidelity.
        assert protocol.UNSUCCESSFULL == "UNSUCCESSFULL"
