"""Integration tests for the community client/server protocol and the
dynamic group discovery engine, over the full simulated stack."""

from __future__ import annotations

import pytest

from repro.community import protocol
from repro.eval.testbed import Testbed
from repro.mobility import LinearCrossing, Point


class TestClientServerOperations:
    def test_get_online_members_aggregates_neighbourhood(self, bed, trio):
        alice, bob, carol = trio
        members = bed.execute(alice.app.view_all_members())
        assert [m["member_id"] for m in members] == ["bob", "carol"]

    def test_logged_out_member_not_listed(self, bed, trio):
        alice, bob, carol = trio
        bob.app.logout()
        members = bed.execute(alice.app.view_all_members())
        assert [m["member_id"] for m in members] == ["carol"]

    def test_interest_list_union_without_duplicates(self, bed, trio):
        alice, _, _ = trio
        interests = bed.execute(alice.app.view_interest_list())
        assert interests == ["football", "music", "movies"]

    def test_interested_members(self, bed, trio):
        alice, _, _ = trio
        members = bed.execute(
            alice.app.client.get_interested_members("movies"))
        assert [m["member_id"] for m in members] == ["bob", "carol"]

    def test_view_profile_records_viewer(self, bed, trio):
        alice, bob, _ = trio
        profile = bed.execute(alice.app.view_member_profile("bob"))
        assert profile["member_id"] == "bob"
        assert [view.viewer for view in bob.app.profile.viewers] == ["alice"]

    def test_view_unknown_profile_returns_none(self, bed, trio):
        alice, _, _ = trio
        assert bed.execute(alice.app.view_member_profile("nobody")) is None

    def test_comment_lands_on_remote_profile(self, bed, trio):
        alice, bob, _ = trio
        ok = bed.execute(alice.app.comment_profile("bob", "hello!"))
        assert ok
        assert [(c.author, c.text) for c in bob.app.profile.comments] == [
            ("alice", "hello!")]
        # The commented profile is visible to a later viewer.
        profile = bed.execute(alice.app.view_member_profile("bob"))
        assert profile["comments"] == [["alice", "hello!"]]

    def test_check_member_location(self, bed, trio):
        alice, _, _ = trio
        assert bed.execute(
            alice.app.client.check_member_location("carol")) == "carol"
        assert bed.execute(
            alice.app.client.check_member_location("nobody")) is None

    def test_trusted_friends_listing(self, bed, trio):
        alice, bob, _ = trio
        bob.app.accept_trusted("carol")
        trusted = bed.execute(alice.app.view_trusted_friends("bob"))
        assert trusted == ["carol"]

    def test_shared_content_requires_trust(self, bed, trio):
        alice, bob, _ = trio
        bob.app.share_file("mix.mp3", 9000)
        denied = bed.execute(alice.app.view_shared_content("bob"))
        assert denied == protocol.NOT_TRUSTED_YET
        bob.app.accept_trusted("alice")
        files = bed.execute(alice.app.view_shared_content("bob"))
        assert files == [{"name": "mix.mp3", "size": 9000}]

    def test_shared_content_unknown_member(self, bed, trio):
        alice, _, _ = trio
        assert bed.execute(
            alice.app.view_shared_content("ghost")) == protocol.NO_MEMBERS_YET

    def test_send_message_delivered_and_recorded(self, bed, trio):
        alice, bob, _ = trio
        status = bed.execute(alice.app.send_message("bob", "hi", "body"))
        assert status == protocol.SUCCESSFULLY_WRITTEN
        assert [(m.sender, m.subject, m.body) for m in bob.app.profile.inbox
                ] == [("alice", "hi", "body")]
        assert [(m.receiver, m.subject) for m in alice.app.profile.sent
                ] == [("bob", "hi")]

    def test_send_message_to_absent_member(self, bed, trio):
        alice, _, _ = trio
        status = bed.execute(alice.app.send_message("ghost", "s", "b"))
        assert status == protocol.NO_MEMBERS_YET

    def test_request_trust_denied_by_default_policy(self, bed, trio):
        alice, bob, _ = trio
        accepted = bed.execute(alice.app.client.request_trust("bob"))
        assert not accepted
        assert not bob.app.profile.trusts("alice")

    def test_operations_require_login(self, bed, trio):
        alice, _, _ = trio
        alice.app.logout()
        with pytest.raises(PermissionError):
            bed.execute(alice.app.view_member_profile("bob"))

    def test_connections_are_pooled_across_operations(self, bed, trio):
        alice, _, _ = trio
        bed.execute(alice.app.view_all_members())
        opened_after_first = alice.app.pool.opened_total
        bed.execute(alice.app.view_interest_list())
        assert alice.app.pool.opened_total == opened_after_first

    def test_server_counts_requests(self, bed, trio):
        _, bob, _ = trio
        before = bob.app.server.requests_served
        bed.execute(trio[0].app.view_all_members())
        assert bob.app.server.requests_served == before + 1


class TestDynamicGroupDiscovery:
    def test_groups_form_from_matching_interests(self, bed, trio):
        alice, bob, carol = trio
        assert alice.groups() == ["football", "music"]
        assert alice.app.group_members("football") == ["alice", "bob"]
        assert alice.app.group_members("music") == ["alice", "carol"]

    def test_views_are_symmetric(self, bed, trio):
        alice, bob, _ = trio
        assert alice.app.group_members("football") == \
            bob.app.group_members("football")

    def test_no_group_without_shared_interest(self, bed):
        loner = bed.add_member("dave", ["quantum knitting"])
        bed.run(30.0)
        assert loner.groups() == []

    def test_member_leaving_range_exits_groups(self, bed, trio):
        alice, bob, _ = trio
        bed.world.move_node("bob", Point(250, 250))
        bed.run(40.0)
        assert "bob" not in alice.app.group_members("football")

    def test_member_returning_rejoins(self, bed, trio):
        alice, bob, _ = trio
        original = Point(bed.world.node("bob").position.x,
                         bed.world.node("bob").position.y)
        bed.world.move_node("bob", Point(250, 250))
        bed.run(40.0)
        assert "bob" not in alice.app.group_members("football")
        bed.world.move_node("bob", original)
        bed.run(40.0)
        assert "bob" in alice.app.group_members("football")

    def test_probe_log_records_discoveries(self, bed, trio):
        alice, _, _ = trio
        probed = {record.device_id for record in alice.app.engine.probe_log}
        assert probed == {"bob", "carol"}
        for record in alice.app.engine.probe_log:
            assert record.finished_at >= record.started_at
            assert record.member_id in {"bob", "carol"}

    def test_late_login_found_by_retry(self, bed):
        alice = bed.add_member("alice", ["football"])
        sleeper = bed.add_member("sleeper", ["football"], auto_login=False)
        bed.run(30.0)
        assert alice.groups() == []  # sleeper not logged in yet
        sleeper.app.login("sleeper", "pw")
        bed.run(40.0)  # retry probe finds the now-active member
        assert alice.app.group_members("football") == ["alice", "sleeper"]

    def test_manual_join_and_leave(self, bed, trio):
        alice, _, _ = trio
        alice.app.join_group("movies")
        assert "movies" in alice.app.my_groups()
        assert "alice" in alice.app.group_members("movies")
        alice.app.leave_group("movies")
        assert "movies" not in alice.app.my_groups()

    def test_manual_membership_survives_refresh(self, bed, trio):
        alice, _, _ = trio
        alice.app.join_group("movies")
        alice.app.engine.refresh()
        assert "movies" in alice.app.my_groups()

    def test_logout_removes_self_after_refresh(self, bed, trio):
        alice, _, _ = trio
        alice.app.logout()
        assert alice.app.my_groups() == []

    def test_figure5_churn_walker_joins_then_leaves(self):
        bed = Testbed(seed=23, technologies=("bluetooth",))
        observer = bed.add_member("obs", ["football"],
                                  position=Point(100, 100))
        bed.add_member("walker", ["football"],
                       position=Point(82, 100),
                       model=LinearCrossing(Point(82, 100),
                                            Point(125, 100), 1.0))
        joined_at = left_at = None
        for _ in range(100_000):
            if not bed.env.step():
                break
            members = observer.app.group_members("football")
            if joined_at is None and "walker" in members:
                joined_at = bed.env.now
            if joined_at is not None and left_at is None \
                    and "walker" not in members:
                left_at = bed.env.now
                break
        assert joined_at is not None, "walker never joined"
        assert left_at is not None, "walker never left"
        # The walker is in Bluetooth range (10 m) from x=90 (t=8) to
        # x=110 (t=28).  Discovery lag trails physical entry/exit.
        assert 8.0 <= joined_at <= 30.0
        assert left_at > joined_at
        assert 28.0 <= left_at <= 60.0
        bed.stop()


class TestSemanticsEndToEnd:
    def test_biking_cycling_split_without_semantics(self, bed):
        ann = bed.add_member("ann", ["biking"])
        bed.add_member("ben", ["cycling"])
        bed.run(30.0)
        assert ann.groups() == []  # exact matching: no shared group

    def test_teaching_merges_split_groups(self):
        bed = Testbed(seed=31, semantic=True)
        ann = bed.add_member("ann", ["biking"])
        bed.add_member("ben", ["cycling"])
        bed.run(30.0)
        assert ann.groups() == []
        ann.app.engine.teach_semantics("biking", "cycling")
        assert ann.app.group_members("biking") == ["ann", "ben"]
        assert ann.app.group_members("cycling") == ["ann", "ben"]
        bed.stop()

    def test_teaching_requires_semantic_matcher(self, bed, trio):
        alice, _, _ = trio
        with pytest.raises(TypeError):
            alice.app.engine.teach_semantics("biking", "cycling")
